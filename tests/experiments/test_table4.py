"""Table 4: the structure-skew ladder behaves like the paper predicts."""

import pytest

from repro.experiments import table4
from repro.experiments.registry import get
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def quick_result():
    return get("table4").run_quick(ExperimentContext.quick())


class TestTable4:
    def test_rows_cover_the_ladder_times_kernels(self, quick_result):
        assert len(quick_result.rows) == \
            len(quick_result.workloads) * len(quick_result.kernels)
        assert quick_result.kernels == ["gram", "spmv"]

    def test_rows_are_model_major_in_ladder_order(self, quick_result):
        workloads = [row.workload for row in quick_result.rows]
        expected = [name for name in quick_result.workloads
                    for _ in quick_result.kernels]
        assert workloads == expected

    def test_structured_models_are_more_skewed_than_uniform(self, quick_result):
        by_model = {row.model: row for row in quick_result.rows}
        assert by_model["density_gradient"].occupancy_cv > \
            2 * by_model["uniform"].occupancy_cv
        assert by_model["banded"].occupancy_cv > \
            2 * by_model["uniform"].occupancy_cv

    def test_speedups_are_positive_and_finite(self, quick_result):
        for row in quick_result.rows:
            assert row.speedup_ob_vs_naive > 0
            assert row.speedup_ob_vs_prescient > 0
            assert 0.0 <= row.glb_overbooking_rate <= 1.0
            assert row.nnz > 0

    def test_row_lookup_and_geomean(self, quick_result):
        name = quick_result.workloads[0]
        row = quick_result.row(name, "gram")
        assert row.kernel == "gram"
        assert quick_result.geomean_speedup(name) > 0
        with pytest.raises(KeyError):
            quick_result.row("missing", "gram")

    def test_result_formats_as_table(self, quick_result):
        text = table4.format_result(quick_result)
        assert "occupancy CV" in text
        assert "uniform" in text

    def test_default_ladder_spans_skew(self):
        # Full-size specs parse and order from unstructured to hub-skewed.
        from repro.tensor.synth import synth_specs

        specs = synth_specs(table4.DEFAULT_SPECS)
        assert specs[0].model == "uniform"
        assert specs[-1].model == "power_law_rows"
        assert len({spec.workload_name for spec in specs}) == len(specs)

    def test_quick_run_is_deterministic(self, quick_result):
        again = get("table4").run_quick(ExperimentContext.quick())
        assert again.rows == quick_result.rows
