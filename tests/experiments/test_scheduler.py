"""Scheduler determinism and bookkeeping.

The headline test is the ISSUE's golden comparison: reports produced by the
multi-process scheduler (2 workers, suites rebuilt from seeds in the
workers) must match a single-process ``ExperimentContext.full().all_reports()``
to 1e-9 on every headline quantity.
"""

import pytest

from repro.experiments.runner import (
    ExperimentContext,
    clear_process_caches,
    memoized_reports,
)
from repro.experiments.scheduler import (
    EvaluationRequest,
    EvaluationScheduler,
    requests_for_context,
)
from repro.experiments.sweep import sweep_grid
from repro.tensor.suite import small_suite, suite_from_token


def _report_values(report):
    return {
        "bound": report.bound,
        "bumped_fraction": report.bumped_fraction,
        "cycles": report.cycles,
        "data_reuse_fraction": report.data_reuse_fraction,
        "dram_total_words": report.traffic.dram.total_words,
        "effectual_multiplies": report.effectual_multiplies,
        "energy_total_pj": report.energy.total_pj,
        "glb_block_rows": report.glb_block_rows,
        "glb_overbooking_rate": report.glb_overbooking_rate,
        "glb_total_words": report.traffic.global_buffer.total_words,
        "glb_utilization": report.glb_utilization,
        "output_nonzeros": report.output_nonzeros,
        "tiling_tax_elements": report.tiling_tax_elements,
    }


def _assert_reports_equal(serial, parallel, rel=1e-9):
    assert sorted(parallel) == sorted(serial)
    for workload, per_variant in serial.items():
        assert sorted(parallel[workload]) == sorted(per_variant)
        for variant, expected in per_variant.items():
            actual = _report_values(parallel[workload][variant])
            for key, value in _report_values(expected).items():
                if isinstance(value, str):
                    assert actual[key] == value, f"{workload}/{variant}/{key}"
                else:
                    assert actual[key] == pytest.approx(value, rel=rel, abs=rel), \
                        f"{workload}/{variant}/{key}"


class TestParallelEqualsSerial:
    def test_full_suite_two_workers_matches_serial_golden(self):
        clear_process_caches()
        serial = ExperimentContext.full().all_reports()

        clear_process_caches()
        context = ExperimentContext.full()
        scheduler = EvaluationScheduler(max_workers=2, min_parallel_requests=1)
        stats = scheduler.prefetch_context(context)
        assert stats.computed == len(context.workload_names)
        assert stats.workers == 2
        parallel = context.all_reports()

        _assert_reports_equal(serial, parallel)

    def test_quick_suite_two_workers_matches_serial(self):
        clear_process_caches()
        serial = ExperimentContext.quick().all_reports()

        clear_process_caches()
        context = ExperimentContext.quick()
        EvaluationScheduler(max_workers=2, min_parallel_requests=1) \
            .prefetch_context(context)
        _assert_reports_equal(serial, context.all_reports())


class TestSchedulerBookkeeping:
    def test_prefetch_deduplicates_and_warms(self):
        clear_process_caches()
        context = ExperimentContext.quick()
        scheduler = EvaluationScheduler(max_workers=1)
        requests = requests_for_context(context) * 2  # duplicates

        first = scheduler.prefetch(requests)
        assert first.requested == 6
        assert first.unique == 3
        assert first.computed == 3
        for request in requests:
            assert memoized_reports(request.memo_key) is not None

        second = scheduler.prefetch(requests)
        assert second.warm == 3
        assert second.computed == 0
        assert second.workers == 0

    def test_serial_fallback_below_threshold(self):
        clear_process_caches()
        context = ExperimentContext.quick()
        stats = EvaluationScheduler(max_workers=8, min_parallel_requests=50) \
            .prefetch_context(context)
        assert stats.computed == 3
        assert stats.workers <= 1  # fell back to in-process evaluation

    def test_custom_suite_yields_no_requests(self):
        suite = small_suite().subset(["tiny-fem"])
        context = ExperimentContext(suite=suite)
        assert context.suite_token is not None  # canonical subsets still share
        custom = ExperimentContext(
            suite=type(suite)([suite.spec("tiny-fem")], seed=7))
        assert custom.suite_token is None
        assert requests_for_context(custom) == []

    def test_request_without_token_rejected(self):
        request = EvaluationRequest(
            suite_token=None, architecture=ExperimentContext.quick().architecture,
            overbooking_target=0.1, workload="tiny-fem")
        with pytest.raises(ValueError, match="suite token"):
            EvaluationScheduler(max_workers=1).prefetch([request])

    def test_suite_rebuilt_from_token_is_bit_identical(self):
        suite = small_suite()
        rebuilt = suite_from_token(suite.cache_token)
        assert rebuilt.names == suite.names
        for name in suite.names:
            a, b = suite.matrix(name), rebuilt.matrix(name)
            assert (a.csr != b.csr).nnz == 0

    def test_unknown_token_scope_raises(self):
        with pytest.raises(KeyError, match="canonical"):
            suite_from_token(("nonesuch", 2023, ("x",)))


class TestSweepThroughScheduler:
    def test_sweep_three_targets_parallel_matches_serial(self, tmp_path):
        y_values = (0.05, 0.10, 0.22)
        clear_process_caches()
        serial = sweep_grid(small_suite(), y_values=y_values, max_workers=1)

        clear_process_caches()
        parallel = sweep_grid(
            small_suite(), y_values=y_values,
            scheduler=EvaluationScheduler(max_workers=2, min_parallel_requests=1))
        assert parallel.schedule.workers == 2
        assert parallel.schedule.computed == 9  # 3 targets x 3 workloads

        assert len(parallel.summaries) == 3
        for left, right in zip(serial.rows, parallel.rows):
            assert left == right  # frozen dataclasses: exact field equality

        json_path = parallel.write_json(tmp_path / "sweep.json")
        csv_path = parallel.write_csv(tmp_path / "sweep.csv")
        assert json_path.stat().st_size > 0
        header, *body = csv_path.read_text().splitlines()
        assert header.startswith("overbooking_target,")
        assert len(body) == len(parallel.rows)

    def test_capacity_scaling_changes_architecture(self):
        result = sweep_grid(small_suite(), y_values=(0.10,),
                            glb_scales=(0.5, 1.0), max_workers=1,
                            workloads=["tiny-fem"])
        capacities = {point.glb_capacity_words for point in result.points}
        assert len(capacities) == 2
        assert result.suite_workloads == ["tiny-fem"]

    def test_summary_at_unknown_point_raises(self):
        result = sweep_grid(small_suite(), y_values=(0.10,), max_workers=1,
                            workloads=["tiny-fem"])
        with pytest.raises(KeyError):
            result.summary_at(0.99)
