"""Golden regression test: ``ExperimentContext.quick()`` report values.

The values below were captured from the seed implementation (per-tile
``Tile``-object tiling layer, no memoization) before the tiling layer was
vectorized.  The vectorized, memoized pipeline must reproduce every headline
report quantity to 1e-9 relative tolerance — the refactor is a performance
change, not a modeling change.
"""

import pytest

from repro.experiments.runner import ExperimentContext

#: Captured from the seed implementation (see PERFORMANCE.md).
GOLDEN = {'tiny-fem': {'ExTensor-N': {'bound': 'dram',
                             'bumped_fraction': 0.0,
                             'cycles': 261213.0,
                             'data_reuse_fraction': 1.0,
                             'dram_total_words': 1044852.0,
                             'effectual_multiplies': 160870,
                             'energy_total_pj': 176927106.42525,
                             'glb_block_rows': 13,
                             'glb_overbooking_rate': 0.0,
                             'glb_total_words': 1934308.0,
                             'glb_utilization': 0.02511012300531915,
                             'output_nonzeros': 58362,
                             'tiling_tax_elements': 0.0},
              'ExTensor-OB': {'bound': 'dram',
                              'bumped_fraction': 0.1842159702110054,
                              'cycles': 47245.0,
                              'data_reuse_fraction': 0.8157840297889947,
                              'dram_total_words': 188980.0,
                              'effectual_multiplies': 160870,
                              'energy_total_pj': 31942691.650204584,
                              'glb_block_rows': 553,
                              'glb_overbooking_rate': 0.5,
                              'glb_total_words': 244584.0,
                              'glb_utilization': 0.54388427734375,
                              'output_nonzeros': 58362,
                              'tiling_tax_elements': 38672.0},
              'ExTensor-P': {'bound': 'dram',
                             'bumped_fraction': 0.0,
                             'cycles': 43683.0,
                             'data_reuse_fraction': 1.0,
                             'dram_total_words': 174732.0,
                             'effectual_multiplies': 160870,
                             'energy_total_pj': 29583290.329665706,
                             'glb_block_rows': 506,
                             'glb_overbooking_rate': 0.0,
                             'glb_total_words': 232740.0,
                             'glb_utilization': 0.590087890625,
                             'output_nonzeros': 58362,
                             'tiling_tax_elements': 541408.0}},
 'tiny-road': {'ExTensor-N': {'bound': 'dram',
                              'bumped_fraction': 0.0,
                              'cycles': 232584.5,
                              'data_reuse_fraction': 1.0,
                              'dram_total_words': 930338.0,
                              'effectual_multiplies': 27403,
                              'energy_total_pj': 157548121.11237964,
                              'glb_block_rows': 9,
                              'glb_overbooking_rate': 0.0,
                              'glb_total_words': 1812824.0,
                              'glb_utilization': 0.005440673828125,
                              'output_nonzeros': 15012,
                              'tiling_tax_elements': 0.0},
               'ExTensor-OB': {'bound': 'dram',
                               'bumped_fraction': 0.0,
                               'cycles': 11963.0,
                               'data_reuse_fraction': 1.0,
                               'dram_total_words': 47852.0,
                               'effectual_multiplies': 27403,
                               'energy_total_pj': 8033533.789597727,
                               'glb_block_rows': 900,
                               'glb_overbooking_rate': 0.0,
                               'glb_total_words': 64016.0,
                               'glb_utilization': 0.5440673828125,
                               'output_nonzeros': 15012,
                               'tiling_tax_elements': 17828.0},
               'ExTensor-P': {'bound': 'dram',
                              'bumped_fraction': 0.0,
                              'cycles': 11963.0,
                              'data_reuse_fraction': 1.0,
                              'dram_total_words': 47852.0,
                              'effectual_multiplies': 27403,
                              'energy_total_pj': 8039072.292333305,
                              'glb_block_rows': 900,
                              'glb_overbooking_rate': 0.0,
                              'glb_total_words': 65680.0,
                              'glb_utilization': 0.5440673828125,
                              'output_nonzeros': 15012,
                              'tiling_tax_elements': 106968.0}},
 'tiny-social': {'ExTensor-N': {'bound': 'dram',
                                'bumped_fraction': 0.0,
                                'cycles': 216541.0,
                                'data_reuse_fraction': 1.0,
                                'dram_total_words': 866164.0,
                                'effectual_multiplies': 62282,
                                'energy_total_pj': 146438683.0156888,
                                'glb_block_rows': 11,
                                'glb_overbooking_rate': 0.0,
                                'glb_total_words': 1622164.0,
                                'glb_utilization': 0.011444091796875,
                                'output_nonzeros': 43082,
                                'tiling_tax_elements': 0.0},
                 'ExTensor-OB': {'bound': 'dram',
                                 'bumped_fraction': 0.0,
                                 'cycles': 27541.0,
                                 'data_reuse_fraction': 1.0,
                                 'dram_total_words': 110164.0,
                                 'effectual_multiplies': 62282,
                                 'energy_total_pj': 18527626.280936934,
                                 'glb_block_rows': 700,
                                 'glb_overbooking_rate': 0.0,
                                 'glb_total_words': 176206.0,
                                 'glb_utilization': 0.732421875,
                                 'output_nonzeros': 43082,
                                 'tiling_tax_elements': 24000.0},
                 'ExTensor-P': {'bound': 'dram',
                                'bumped_fraction': 0.0,
                                'cycles': 27541.0,
                                'data_reuse_fraction': 1.0,
                                'dram_total_words': 110164.0,
                                'effectual_multiplies': 62282,
                                'energy_total_pj': 18467574.798752263,
                                'glb_block_rows': 700,
                                'glb_overbooking_rate': 0.0,
                                'glb_total_words': 158164.0,
                                'glb_utilization': 0.732421875,
                                'output_nonzeros': 43082,
                                'tiling_tax_elements': 120000.0}}}


@pytest.fixture(scope="module")
def quick_reports():
    return ExperimentContext.quick().all_reports()


def _report_values(report):
    return {
        "bound": report.bound,
        "bumped_fraction": report.bumped_fraction,
        "cycles": report.cycles,
        "data_reuse_fraction": report.data_reuse_fraction,
        "dram_total_words": report.traffic.dram.total_words,
        "effectual_multiplies": report.effectual_multiplies,
        "energy_total_pj": report.energy.total_pj,
        "glb_block_rows": report.glb_block_rows,
        "glb_overbooking_rate": report.glb_overbooking_rate,
        "glb_total_words": report.traffic.global_buffer.total_words,
        "glb_utilization": report.glb_utilization,
        "output_nonzeros": report.output_nonzeros,
        "tiling_tax_elements": report.tiling_tax_elements,
    }


def test_workloads_and_variants_unchanged(quick_reports):
    assert sorted(quick_reports) == sorted(GOLDEN)
    for workload, per_variant in GOLDEN.items():
        assert sorted(quick_reports[workload]) == sorted(per_variant)


@pytest.mark.parametrize("workload", sorted(GOLDEN))
def test_reports_match_seed_to_1e9(quick_reports, workload):
    for variant, expected in GOLDEN[workload].items():
        actual = _report_values(quick_reports[workload][variant])
        for key, value in expected.items():
            if isinstance(value, str):
                assert actual[key] == value, f"{workload}/{variant}/{key}"
            else:
                assert actual[key] == pytest.approx(value, rel=1e-9, abs=1e-9), \
                    f"{workload}/{variant}/{key}"
