"""Persistent report store: round-trips, schema versioning, atomicity."""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.experiments.runner import ExperimentContext, clear_process_caches
from repro.experiments.scheduler import EvaluationScheduler
from repro.experiments.store import (
    SCHEMA_VERSION,
    TMP_GRACE_SECONDS,
    GcStats,
    ReportStore,
    StoreError,
    StoreSchemaError,
    decode_report,
    encode_report,
    format_stats,
    key_digest,
)


@pytest.fixture()
def quick_context():
    return ExperimentContext.quick()


@pytest.fixture()
def store(tmp_path):
    return ReportStore(tmp_path / "store")


def _memo_key(context, name):
    key = context.memo_key(name)
    assert key is not None
    return key


class TestRoundTrip:
    def test_report_disk_report_identical(self, store, quick_context):
        """report -> disk -> report is exact (frozen dataclass equality)."""
        for name in quick_context.workload_names:
            reports = quick_context.reports(name)
            key = _memo_key(quick_context, name)
            store.store(key, reports)
            loaded = store.load(key)
            assert loaded is not None
            assert set(loaded) == set(reports)
            for variant in reports:
                # Frozen dataclasses compare field-by-field, so this asserts
                # bit-exact floats everywhere (far stronger than 1e-9).
                assert loaded[variant] == reports[variant]

    def test_round_trip_values_within_1e9(self, store, quick_context):
        """The ISSUE's tolerance, stated explicitly on the headline metrics."""
        name = quick_context.workload_names[0]
        reports = quick_context.reports(name)
        key = _memo_key(quick_context, name)
        store.store(key, reports)
        loaded = store.load(key)
        for variant, report in reports.items():
            assert loaded[variant].cycles == pytest.approx(
                report.cycles, abs=1e-9)
            assert loaded[variant].total_energy_pj == pytest.approx(
                report.total_energy_pj, abs=1e-9)
            assert loaded[variant].dram_words == pytest.approx(
                report.dram_words, abs=1e-9)

    def test_encode_decode_preserves_derived_properties(self, quick_context):
        reports = quick_context.reports("tiny-fem")
        for report in reports.values():
            clone = decode_report(json.loads(json.dumps(encode_report(report))))
            assert clone.total_energy_pj == report.total_energy_pj
            assert clone.traffic.dram_overhead_fraction == \
                report.traffic.dram_overhead_fraction
            assert clone.details == report.details

    def test_miss_returns_none_and_counts(self, store, quick_context):
        key = _memo_key(quick_context, "tiny-fem")
        assert store.load(key) is None
        assert store.session.misses == 1
        assert not store.contains(key)


class TestContentAddressing:
    def test_same_identity_same_path(self, tmp_path, quick_context):
        a = ReportStore(tmp_path / "store")
        b = ReportStore(tmp_path / "store")
        key = _memo_key(quick_context, "tiny-fem")
        assert a.path_for(key) == b.path_for(key)

    def test_different_workload_different_digest(self, quick_context):
        assert key_digest(_memo_key(quick_context, "tiny-fem")) != \
            key_digest(_memo_key(quick_context, "tiny-road"))

    def test_different_y_different_digest(self, quick_context):
        other = quick_context.with_overbooking_target(0.22)
        assert key_digest(_memo_key(quick_context, "tiny-fem")) != \
            key_digest(_memo_key(other, "tiny-fem"))

    def test_different_kernel_different_digest(self, quick_context):
        other = quick_context.with_kernel("spmv")
        assert key_digest(_memo_key(quick_context, "tiny-fem")) != \
            key_digest(_memo_key(other, "tiny-fem"))


class TestSchemaVersioning:
    def test_entry_version_mismatch_rejected(self, store, quick_context):
        key = _memo_key(quick_context, "tiny-fem")
        path = store.store(key, quick_context.reports("tiny-fem"))
        payload = json.loads(path.read_text())
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreSchemaError, match="schema"):
            store.load(key)

    def test_corrupt_entry_quarantined_and_treated_as_miss(self, store,
                                                           quick_context):
        key = _memo_key(quick_context, "tiny-fem")
        path = store.store(key, quick_context.reports("tiny-fem"))
        path.write_text("{not json")
        # A torn/corrupt entry must never crash a reader: it is sidelined
        # into quarantine/ and the key becomes a plain miss.
        assert store.load(key) is None
        assert not path.exists()
        assert store.session.quarantined == 1
        assert store.session.misses == 1
        assert [p.name for p in store.quarantine_paths()] == [path.name]
        assert store.stats().quarantined == 1
        # The miss is recoverable: re-store and load round-trips again.
        store.store(key, quick_context.reports("tiny-fem"))
        assert store.load(key) is not None

    def test_undecodable_reports_quarantined(self, store, quick_context):
        key = _memo_key(quick_context, "tiny-fem")
        path = store.store(key, quick_context.reports("tiny-fem"))
        payload = json.loads(path.read_text())
        del payload["reports"][next(iter(payload["reports"]))]["traffic"]
        path.write_text(json.dumps(payload))
        assert store.load(key) is None  # valid JSON, wrong shape -> miss
        assert store.session.quarantined == 1

    def test_create_false_refuses_nonexistent_store(self, tmp_path):
        with pytest.raises(StoreError, match="no report store"):
            ReportStore(tmp_path / "nonesuch", create=False)
        assert not (tmp_path / "nonesuch").exists()  # nothing initialized

    def test_cli_store_stats_on_missing_path_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "stats", "--store",
                     str(tmp_path / "typo")]) == 2
        assert "no report store" in capsys.readouterr().err

    def test_marker_version_mismatch_rejected_at_open(self, tmp_path):
        root = tmp_path / "store"
        ReportStore(root)  # creates the marker
        marker = root / "store.json"
        marker.write_text(json.dumps({"schema_version": SCHEMA_VERSION + 1}))
        with pytest.raises(StoreSchemaError, match="store gc"):
            ReportStore(root)
        # ... but gc can open it (check_marker=False) and repair the marker.
        ReportStore(root, check_marker=False).gc()
        ReportStore(root)

    def test_gc_prunes_stale_and_corrupt_entries(self, store, quick_context):
        keys = [_memo_key(quick_context, name)
                for name in quick_context.workload_names]
        paths = [store.store(key, quick_context.reports(key[-1]))
                 for key in keys]
        stale = json.loads(paths[0].read_text())
        stale["schema_version"] = 0
        paths[0].write_text(json.dumps(stale))
        paths[1].write_text("garbage")
        orphan = paths[2].parent / (paths[2].name + ".tmpleftover")
        orphan.write_text("x")
        # Age the orphan past the live-writer grace period: gc only reaps
        # temp files no writer could still be about to publish.
        stamp = time.time() - 2 * TMP_GRACE_SECONDS
        os.utime(orphan, (stamp, stamp))

        outcome = store.gc()
        assert isinstance(outcome, GcStats)
        assert outcome.removed_entries == 2
        assert outcome.removed_temp_files == 1
        assert outcome.kept == 1
        assert outcome.reclaimed_bytes > 0
        assert not paths[0].exists() and not paths[1].exists()
        assert store.load(keys[2]) is not None


class TestLoadMany:
    def test_matches_individual_loads(self, store, quick_context):
        names = ["tiny-fem", "tiny-social", "tiny-road"]
        keys = [_memo_key(quick_context, name) for name in names]
        for name, key in zip(names, keys):
            store.store(key, quick_context.reports(name))
        loaded = store.load_many(keys)
        assert set(loaded) == set(keys)
        for name, key in zip(names, keys):
            assert loaded[key] == quick_context.reports(name)

    def test_absent_keys_are_misses(self, store, quick_context):
        present = _memo_key(quick_context, "tiny-fem")
        absent = _memo_key(quick_context, "tiny-road")
        store.store(present, quick_context.reports("tiny-fem"))
        loaded = store.load_many([present, absent])
        assert set(loaded) == {present}
        assert store.session.hits == 1
        assert store.session.misses == 1

    def test_empty_batch_and_all_missing_shard(self, store, quick_context):
        assert store.load_many([]) == {}
        # A batch whose shard directories don't exist yet: all misses.
        keys = [_memo_key(quick_context, name)
                for name in ("tiny-fem", "tiny-road")]
        assert store.load_many(keys) == {}
        assert store.session.misses == 2

    def test_duplicate_keys_loaded_once(self, store, quick_context):
        key = _memo_key(quick_context, "tiny-fem")
        store.store(key, quick_context.reports("tiny-fem"))
        loaded = store.load_many([key, key, key])
        assert loaded == {key: quick_context.reports("tiny-fem")}
        assert store.session.hits == 1

    def test_corrupt_entry_quarantined_in_batch(self, store, quick_context):
        good = _memo_key(quick_context, "tiny-fem")
        bad = _memo_key(quick_context, "tiny-road")
        store.store(good, quick_context.reports("tiny-fem"))
        bad_path = store.store(bad, quick_context.reports("tiny-road"))
        bad_path.write_text("{not json")
        loaded = store.load_many([good, bad])
        assert set(loaded) == {good}
        assert store.session.quarantined == 1
        assert not bad_path.exists()


class TestConcurrency:
    def test_concurrent_writers_atomic(self, store, quick_context):
        """Racing writers on one key leave a valid entry and no temp files."""
        key = _memo_key(quick_context, "tiny-fem")
        reports = quick_context.reports("tiny-fem")
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(lambda _: store.store(key, reports), range(64)))
        loaded = store.load(key)
        assert loaded == reports
        leftovers = list(store.path_for(key).parent.glob("*.tmp*"))
        assert leftovers == []

    def test_two_store_instances_share_entries(self, tmp_path, quick_context):
        a = ReportStore(tmp_path / "store")
        b = ReportStore(tmp_path / "store")
        key = _memo_key(quick_context, "tiny-fem")
        a.store(key, quick_context.reports("tiny-fem"))
        assert b.load(key) == quick_context.reports("tiny-fem")


class TestSchedulerIntegration:
    def test_warm_store_computes_nothing(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        clear_process_caches()
        context = ExperimentContext.quick()
        first = EvaluationScheduler(max_workers=1, store=store) \
            .prefetch_context(context)
        assert first.computed == 3 and first.store_writes == 3

        clear_process_caches()  # simulate a fresh process: memo gone
        rerun_store = ReportStore(tmp_path / "store")
        rerun = EvaluationScheduler(max_workers=1, store=rerun_store) \
            .prefetch_context(ExperimentContext.quick())
        assert rerun.computed == 0
        assert rerun.store_hits == 3
        assert rerun_store.session.hits == 3

    def test_store_served_reports_equal_fresh_evaluation(self, tmp_path):
        store = ReportStore(tmp_path / "store")
        clear_process_caches()
        context = ExperimentContext.quick()
        EvaluationScheduler(max_workers=1, store=store) \
            .prefetch_context(context)
        fresh = {name: context.reports(name)
                 for name in context.workload_names}

        clear_process_caches()
        context2 = ExperimentContext.quick()
        EvaluationScheduler(max_workers=1,
                            store=ReportStore(tmp_path / "store")) \
            .prefetch_context(context2)
        for name, per_variant in fresh.items():
            assert context2.reports(name) == per_variant


class TestStatsAndFormatting:
    def test_stats_counts_entries_and_kernels(self, store, quick_context):
        for name in quick_context.workload_names:
            store.store(_memo_key(quick_context, name),
                        quick_context.reports(name))
        stats = store.stats()
        assert stats.entries == 3
        assert stats.reports == 9  # 3 workloads x 3 variants
        assert stats.kernels == {"gram": 3}
        assert stats.schema_versions == {str(SCHEMA_VERSION): 3}
        text = format_stats(stats, store.session, root=store.root)
        assert "entries" in text and "gram=3" in text


class TestLiveStoreMaintenance:
    """Maintenance passes racing live readers/writers (the server case)."""

    def test_gc_leaves_a_paused_writers_tmp_file_alone(self, store,
                                                       quick_context):
        """Regression: gc used to unlink *every* ``*.tmp*`` unconditionally,
        deleting a live writer's temp file out from under its ``os.replace``
        and failing the write.  A temp file younger than the grace period
        must survive gc, and the paused writer's publish must succeed."""
        key = _memo_key(quick_context, "tiny-fem")
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A writer paused between writing its temp file and publishing it —
        # exactly the file _atomic_write_json would have open.
        tmp = path.parent / (path.name + ".tmp-paused")
        tmp.write_text(json.dumps({"half": "written"}))

        outcome = store.gc()
        assert tmp.exists(), "gc reaped a live writer's in-flight temp file"
        assert outcome.removed_temp_files == 0
        assert outcome.skipped >= 1

        # The paused writer resumes: its atomic publish must succeed.
        os.replace(tmp, path)
        assert path.exists()

    def test_gc_reaps_orphaned_tmp_files_after_grace(self, store,
                                                     quick_context):
        key = _memo_key(quick_context, "tiny-fem")
        path = store.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        orphan = path.parent / (path.name + ".tmp-orphan")
        orphan.write_text("dead writer's leftovers")

        # Injectable clock: "now" is far enough in the future that the file
        # has aged past the grace period.
        outcome = store.gc(now=time.time() + TMP_GRACE_SECONDS + 1)
        assert not orphan.exists()
        assert outcome.removed_temp_files == 1

    def test_stats_tolerates_entries_vanishing_mid_walk(self, store,
                                                        quick_context,
                                                        monkeypatch):
        """Regression: ``stats`` used to ``stat()`` each listed path and
        crash with FileNotFoundError when a concurrent gc or quarantine
        move deleted the file between listing and stat."""
        for name in quick_context.workload_names:
            store.store(_memo_key(quick_context, name),
                        quick_context.reports(name))
        real_entry_paths = store._entry_paths

        def vanishing_entry_paths():
            for index, path in enumerate(list(real_entry_paths())):
                if index == 1:
                    path.unlink()  # a concurrent gc got there first
                yield path

        monkeypatch.setattr(store, "_entry_paths", vanishing_entry_paths)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.skipped == 1
        assert "vanished mid-scan" in format_stats(stats)

    def test_gc_tolerates_entries_vanishing_mid_walk(self, store,
                                                     quick_context,
                                                     monkeypatch):
        for name in quick_context.workload_names:
            store.store(_memo_key(quick_context, name),
                        quick_context.reports(name))
        real_entry_paths = store._entry_paths

        def vanishing_entry_paths():
            for index, path in enumerate(list(real_entry_paths())):
                if index == 0:
                    path.unlink()
                yield path

        monkeypatch.setattr(store, "_entry_paths", vanishing_entry_paths)
        outcome = store.gc()
        assert outcome.kept == 2
        assert outcome.skipped == 1
        assert outcome.removed_entries == 0

    def test_verify_tolerates_entries_vanishing_mid_walk(self, store,
                                                         quick_context,
                                                         monkeypatch):
        for name in quick_context.workload_names:
            store.store(_memo_key(quick_context, name),
                        quick_context.reports(name))
        real_entry_paths = store._entry_paths

        def vanishing_entry_paths():
            for index, path in enumerate(list(real_entry_paths())):
                if index == 2:
                    path.unlink()
                yield path

        monkeypatch.setattr(store, "_entry_paths", vanishing_entry_paths)
        outcome = store.verify()
        assert outcome.ok == 2
        assert outcome.skipped == 1
        assert outcome.quarantined == 0
