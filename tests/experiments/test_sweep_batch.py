"""Sweep artifacts are byte-identical with and without the batch engine.

The batch evaluator's contract is stronger than numerical agreement: a grid
swept through :func:`repro.experiments.sweep.sweep_grid` must serialize to
the *same bytes* whether evaluated per-point (``use_batch=False``), batched
serially, or batched across a worker pool with shared-memory suite
transport.  These tests pin that end to end (the CI smoke step repeats the
serial comparison through the CLI).
"""

import pytest

from repro.experiments.runner import clear_process_caches
from repro.experiments.sweep import sweep_grid
from repro.tensor.suite import small_suite

GRID = dict(y_values=(0.05, 0.10), glb_scales=(0.5, 1.0), pe_scales=(1.0,))


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_process_caches()
    yield
    clear_process_caches()


def _artifacts(tmp_path, tag, *, use_batch, max_workers=1):
    clear_process_caches()
    result = sweep_grid(small_suite(), max_workers=max_workers,
                        use_batch=use_batch, **GRID)
    json_path = result.write_json(tmp_path / f"{tag}.json")
    csv_path = result.write_csv(tmp_path / f"{tag}.csv")
    return json_path.read_bytes(), csv_path.read_bytes(), result


def test_batched_sweep_artifacts_byte_identical(tmp_path):
    batched_json, batched_csv, batched = _artifacts(tmp_path, "batched",
                                                    use_batch=True)
    loop_json, loop_csv, loop = _artifacts(tmp_path, "loop", use_batch=False)
    assert batched.schedule.batched and not loop.schedule.batched
    assert batched.schedule.batch_groups == len(small_suite().names)
    assert batched_json == loop_json
    assert batched_csv == loop_csv


def test_pooled_batched_sweep_matches_serial(tmp_path):
    serial_json, serial_csv, _ = _artifacts(tmp_path, "serial",
                                            use_batch=True, max_workers=1)
    pooled_json, pooled_csv, pooled = _artifacts(tmp_path, "pooled",
                                                 use_batch=True,
                                                 max_workers=2)
    assert pooled.schedule.workers == 2
    assert serial_json == pooled_json
    assert serial_csv == pooled_csv
    # The pool's shared-memory exports must all be released afterwards.
    from repro.tensor import shm

    assert shm.active_segments() == []
