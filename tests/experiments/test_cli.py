"""CLI smoke tests (in-process via ``repro.cli.main``)."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "table2", "fig1", "fig5", "fig7", "fig13"):
            assert name in out


class TestRun:
    def test_requires_names_or_all(self, capsys):
        assert main(["run"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError, match="fig99"):
            main(["run", "fig99", "--no-artifacts"])

    def test_single_experiment_quick(self, tmp_path, capsys):
        code = main(["run", "fig7", "--suite", "quick", "--workers", "1",
                     "--output-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig. 7" in out and "geomean" in out

        payload = json.loads((tmp_path / "fig7.json").read_text())
        assert payload["experiment"] == "fig7"
        assert payload["artifact"] == "Fig. 7"
        assert payload["suite"] == "quick"
        assert len(payload["result"]["rows"]) == 3

        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert [e["experiment"] for e in manifest["experiments"]] == ["fig7"]

    def test_run_all_quick_writes_every_artifact(self, tmp_path):
        code = main(["run", "--all", "--suite", "quick", "--workers", "1",
                     "--quiet", "--output-dir", str(tmp_path)])
        assert code == 0
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        names = [entry["experiment"] for entry in manifest["experiments"]]
        assert len(names) == 15
        for entry in manifest["experiments"]:
            artifact = json.loads((tmp_path / entry["path"]).read_text())
            assert artifact["experiment"] == entry["experiment"]
            assert artifact["result"] is not None

    def test_no_artifacts_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["run", "fig5", "--no-artifacts", "--quiet"]) == 0
        assert not (tmp_path / "artifacts").exists()


class TestSweep:
    def test_sweep_quick_three_targets(self, tmp_path, capsys):
        code = main(["sweep", "--suite", "quick", "--y", "0.05,0.1,0.22",
                     "--workers", "1", "--output-dir", str(tmp_path)])
        assert code == 0
        assert "OB/P speedup" in capsys.readouterr().out

        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert len(payload["summaries"]) == 3
        # Run-dependent scheduling stats are excluded so sweep artifacts are
        # byte-deterministic (interrupted + resumed == uninterrupted).
        assert "schedule" not in payload

        csv_lines = (tmp_path / "sweep.csv").read_text().splitlines()
        assert len(csv_lines) == 1 + 3 * 3  # header + targets x workloads

    def test_sweep_workload_subset(self, tmp_path):
        code = main(["sweep", "--suite", "quick", "--y", "0.1",
                     "--workloads", "tiny-fem", "--workers", "1",
                     "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert payload["suite_workloads"] == ["tiny-fem"]

    def test_bad_float_list_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--y", "abc"])
        assert "comma-separated" in capsys.readouterr().err


class TestSynthCli:
    def test_run_with_synth_workloads(self, tmp_path, capsys):
        code = main(["run", "fig7", "--synth", "uniform:n=200,nnz=1500",
                     "--synth", "power_law_rows:n=220,nnz=1600",
                     "--workers", "1", "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "fig7.json").read_text())
        assert payload["suite"] == "synth"
        workloads = [row["workload"] for row in payload["result"]["rows"]]
        assert workloads == ["uniform[n=200,nnz=1500]",
                             "power_law_rows[n=220,nnz=1600]"]

    def test_run_table4_quick_flag(self, tmp_path):
        # The acceptance path: `python -m repro run table4 --quick`.
        code = main(["run", "table4", "--quick", "--workers", "1",
                     "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "table4.json").read_text())
        assert payload["suite"] == "quick"
        rows = payload["result"]["rows"]
        assert {row["model"] for row in rows} == {
            "uniform", "density_gradient", "banded", "power_law_rows"}
        assert {row["kernel"] for row in rows} == {"gram", "spmv"}

    def test_sweep_with_synth_has_model_columns(self, tmp_path):
        code = main(["sweep", "--synth", "uniform:n=180,nnz=1200",
                     "--synth", "banded:n=180,bandwidth=6",
                     "--y", "0.1", "--workers", "1",
                     "--output-dir", str(tmp_path)])
        assert code == 0
        header, *rows = (tmp_path / "sweep.csv").read_text().splitlines()
        assert "model" in header.split(",") and "model_params" in header.split(",")
        assert len(rows) == 2
        assert any(",uniform," in row for row in rows)

        payload = json.loads((tmp_path / "sweep.json").read_text())
        assert {row["model"] for row in payload["rows"]} == {"uniform", "banded"}

    def test_malformed_synth_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig7", "--synth", "uniform:n=abc"])
        assert "must be numeric" in capsys.readouterr().err

    def test_unknown_synth_model_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "fig7", "--synth", "rmat"])
        assert "unknown sparsity model" in capsys.readouterr().err

    def test_run_table4_warns_that_synth_does_not_apply(self, tmp_path, capsys):
        code = main(["run", "table4", "--quick", "--synth", "uniform:n=150,nnz=800",
                     "--workers", "1", "--output-dir", str(tmp_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert "--synth does not apply" in err

    def test_run_threads_workers_into_self_scheduling_experiments(self, tmp_path):
        # table4 schedules its own evaluations; --workers must reach it.
        code = main(["run", "table4", "--quick", "--workers", "1",
                     "--output-dir", str(tmp_path)])
        assert code == 0
        payload = json.loads((tmp_path / "table4.json").read_text())
        assert payload["params"]["max_workers"] == 1
