"""Registry completeness: every paper artifact is registered and runnable."""

import json

import pytest

from repro.experiments import registry
from repro.experiments.runner import ExperimentContext

EXPECTED_NAMES = ["table1", "table2", "table3", "table4", "table5", "fig1",
                  "fig5", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                  "fig13", "fig14"]


@pytest.fixture(scope="module")
def quick_context():
    return ExperimentContext.quick()


class TestCompleteness:
    def test_every_module_is_registered(self):
        assert registry.names() == EXPECTED_NAMES

    def test_one_registration_per_module(self):
        modules = [experiment.module for experiment in registry.experiments()]
        assert len(set(modules)) == len(modules)
        for module in modules:
            assert module.startswith("repro.experiments.")

    def test_artifacts_cover_the_paper(self):
        artifacts = {e.artifact for e in registry.experiments()}
        assert {"Table 1", "Table 2", "Fig. 1", "Fig. 3/5", "Fig. 7", "Fig. 8",
                "Fig. 9", "Fig. 10", "Fig. 11", "Fig. 12", "Fig. 13"} <= artifacts

    def test_only_fig5_is_context_free(self):
        context_free = [e.name for e in registry.experiments()
                        if not e.needs_context]
        assert context_free == ["fig5"]

    def test_reports_consumers_declared(self):
        needing = {e.name for e in registry.experiments() if e.needs_reports}
        assert {"fig7", "fig8", "fig9", "fig10"} <= needing


@pytest.mark.parametrize("name", EXPECTED_NAMES)
def test_every_experiment_runs_on_the_quick_suite(name, quick_context):
    experiment = registry.get(name)
    result = experiment.run_quick(
        quick_context if experiment.needs_context else None)
    text = experiment.format_result(result)
    assert isinstance(text, str) and text
    # The JSON artifact must serialize with the stock encoder.
    payload = json.dumps(experiment.to_json(result))
    assert payload and payload != "null"


class TestRegistryApi:
    def test_get_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="fig7"):
            registry.get("fig99")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register(name="fig7", artifact="Fig. 7", title="dup")(
                lambda context: None)

    def test_required_suite_validated(self):
        with pytest.raises(ValueError, match="required_suite"):
            registry.register(name="bogus", artifact="-", title="-",
                              required_suite="huge")

    def test_context_required_when_declared(self):
        with pytest.raises(ValueError, match="requires a context"):
            registry.get("fig7").run(None)

    def test_evaluation_targets_default(self, quick_context):
        targets = registry.get("fig7").evaluation_targets(quick_context)
        assert targets == [(0.10, name) for name in quick_context.workload_names]

    def test_fig10_announces_its_y_grid(self, quick_context):
        targets = registry.get("fig10").evaluation_targets(
            quick_context, y_values=(0.0, 0.5))
        swept_y = {y for y, _ in targets}
        assert swept_y == {0.0, 0.1, 0.5}


class TestToJsonable:
    def test_numpy_and_nonfinite_values(self):
        import numpy as np

        payload = registry.to_jsonable({
            "arr": np.arange(3), "scalar": np.float64(1.5), "inf": float("inf"),
            "nested": (1, 2),
        })
        assert payload == {"arr": [0, 1, 2], "scalar": 1.5, "inf": "inf",
                           "nested": [1, 2]}
        json.dumps(payload)

    def test_dataclass_properties_included(self):
        result = registry.get("fig7").run(ExperimentContext.quick())
        payload = registry.to_jsonable(result)
        assert "geomean_overbooking" in payload
        assert payload["geomean_overbooking"] == pytest.approx(
            result.geomean_overbooking)


class TestSuiteAndWorkerDeclarations:
    def test_table4_declares_its_own_workload_set(self):
        assert registry.get("table4").uses_context_suite is False
        assert registry.get("fig7").uses_context_suite is True
        assert registry.get("fig5").uses_context_suite is False

    def test_self_scheduling_experiments_accept_max_workers(self):
        assert registry.get("table4").accepts_max_workers is True
        assert registry.get("fig7").accepts_max_workers is False
