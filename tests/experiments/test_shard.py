"""Sharded cooperative sweeps: partitioning, leases, steal, merge, status.

The cross-process crash drill (kill -9 a real worker) lives in
``test_crash_recovery.py``; everything here runs in-process, with fake
clocks where expiry is involved, so the whole protocol is exercised without
a single real sleep.
"""

import json

import pytest

from repro.experiments.runner import clear_process_caches
from repro.experiments.shard import (
    LeaseManager,
    ShardError,
    ShardSpec,
    merge_shards,
    run_shard,
    shard_of,
    shard_status,
)
from repro.experiments.store import ReportStore
from repro.experiments.sweep import plan_grid, sweep_grid
from repro.tensor.suite import small_suite
from repro.utils import faults
from repro.utils.faults import FaultInjector

Y_VALUES = [0.05, 0.10]


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    faults.set_injector(FaultInjector())
    yield
    faults.set_injector(None)


@pytest.fixture()
def store(tmp_path):
    return ReportStore(tmp_path / "store")


@pytest.fixture()
def plan(test_suite):
    return plan_grid(test_suite, y_values=Y_VALUES)


class FakeClock:
    """A monotonic clock tests advance by hand (sleep == advance)."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestShardSpec:
    def test_parse(self):
        spec = ShardSpec.parse("2/4")
        assert (spec.index, spec.count, spec.label) == (2, 4, "2/4")

    @pytest.mark.parametrize("text", ["2", "a/b", "", "1/2/3"])
    def test_malformed_rejected(self, text):
        with pytest.raises(ShardError, match="shard"):
            ShardSpec.parse(text)

    @pytest.mark.parametrize("index,count", [(0, 4), (5, 4), (1, 0)])
    def test_out_of_range_rejected(self, index, count):
        with pytest.raises(ShardError):
            ShardSpec(index=index, count=count)


class TestPartitioning:
    def test_disjoint_and_covering(self, plan):
        """Every cell lands on exactly one shard, for any shard count."""
        for count in (1, 2, 3, 5):
            assignments = [shard_of(request.memo_key, count)
                           for request in plan.unique_requests]
            assert all(1 <= shard <= count for shard in assignments)
            per_shard = [
                {request.memo_key for request in plan.unique_requests
                 if shard_of(request.memo_key, count) == index}
                for index in range(1, count + 1)
            ]
            union = set().union(*per_shard)
            assert union == {r.memo_key for r in plan.unique_requests}
            assert sum(len(cells) for cells in per_shard) == len(union)

    def test_deterministic_across_processes_in_spirit(self, plan):
        """The assignment is a pure function of the cell, not of any state."""
        first = [shard_of(r.memo_key, 4) for r in plan.unique_requests]
        second = [shard_of(r.memo_key, 4) for r in plan.unique_requests]
        assert first == second

    def test_single_shard_owns_everything(self, plan):
        assert all(shard_of(r.memo_key, 1) == 1 for r in plan.unique_requests)


class TestLeases:
    def _cell(self, plan):
        return plan.unique_requests[0].memo_key

    def test_claim_free_then_peer_blocked(self, store, plan):
        clock = FakeClock()
        alice = LeaseManager(store.root, owner="alice", ttl=5.0, clock=clock)
        bob = LeaseManager(store.root, owner="bob", ttl=5.0, clock=clock)
        cell = self._cell(plan)
        lease = alice.try_claim(cell)
        assert lease is not None
        assert bob.try_claim(cell) is None
        assert bob.state(cell) == "held-unknown"
        assert alice.state(cell) == "mine"

    def test_release_frees_the_cell(self, store, plan):
        clock = FakeClock()
        alice = LeaseManager(store.root, owner="alice", ttl=5.0, clock=clock)
        bob = LeaseManager(store.root, owner="bob", ttl=5.0, clock=clock)
        cell = self._cell(plan)
        alice.try_claim(cell).release()
        assert bob.state(cell) == "free"
        assert bob.try_claim(cell) is not None

    def test_renewing_heartbeat_reads_as_alive(self, store, plan):
        clock = FakeClock()
        alice = LeaseManager(store.root, owner="alice", ttl=5.0, clock=clock)
        bob = LeaseManager(store.root, owner="bob", ttl=5.0, clock=clock)
        cell = self._cell(plan)
        lease = alice.try_claim(cell)
        assert bob.state(cell) == "held-unknown"
        lease.renew()
        assert bob.state(cell) == "held-alive"
        # A previously-advancing heartbeat stays "alive" within the TTL ...
        clock.advance(4.9)
        assert bob.state(cell) == "held-alive"
        # ... and renewal resets the observation window.
        lease.renew()
        clock.advance(4.9)
        assert bob.state(cell) == "held-alive"

    def test_frozen_heartbeat_expires_after_ttl(self, store, plan):
        clock = FakeClock()
        alice = LeaseManager(store.root, owner="alice", ttl=5.0, clock=clock)
        bob = LeaseManager(store.root, owner="bob", ttl=5.0, clock=clock)
        cell = self._cell(plan)
        alice.try_claim(cell)  # never renewed: a crashed worker
        assert bob.state(cell) == "held-unknown"
        clock.advance(4.0)
        assert bob.state(cell) == "held-unknown"  # not judged yet
        clock.advance(1.5)
        assert bob.state(cell) == "expired"

    def test_expired_lease_is_reclaimed_with_ownership_readback(
            self, store, plan):
        clock = FakeClock()
        dead = LeaseManager(store.root, owner="dead", ttl=5.0, clock=clock)
        bob = LeaseManager(store.root, owner="bob", ttl=5.0, clock=clock)
        cell = self._cell(plan)
        dead.try_claim(cell)
        bob.state(cell)
        clock.advance(6.0)
        lease = bob.try_claim(cell)
        assert lease is not None
        assert bob.reclaimed == 1
        assert bob.read(cell).owner == "bob"
        # A third worker now sees a fresh, unknown-liveness lease, not an
        # expired one: reclaim resets the heartbeat observation.
        carol = LeaseManager(store.root, owner="carol", ttl=5.0, clock=clock)
        assert carol.state(cell) == "held-unknown"
        assert carol.try_claim(cell) is None

    def test_stalled_heartbeat_fault_freezes_renewal(self, store, plan):
        faults.set_injector(FaultInjector.from_spec("heartbeat.stall=1"))
        clock = FakeClock()
        alice = LeaseManager(store.root, owner="alice", ttl=5.0, clock=clock)
        bob = LeaseManager(store.root, owner="bob", ttl=5.0, clock=clock)
        cell = self._cell(plan)
        lease = alice.try_claim(cell)
        bob.state(cell)
        for _ in range(10):
            lease.renew()  # all silently dropped: the worker is "wedged"
        assert alice.read(cell).heartbeat == 0
        clock.advance(6.0)
        assert bob.state(cell) == "expired"

    def test_torn_lease_file_does_not_block_the_cell(self, store, plan):
        manager = LeaseManager(store.root, owner="alice", ttl=5.0)
        cell = self._cell(plan)
        path = manager.path_for(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{torn")
        assert manager.state(cell) == "free"
        lease = manager.try_claim(cell)  # atomic takeover, not O_EXCL
        assert lease is not None
        assert manager.read(cell).owner == "alice"


class TestRunShardAndMerge:
    def _serial_artifacts(self, tmp_path, suite):
        clear_process_caches()
        result = sweep_grid(suite, y_values=Y_VALUES, max_workers=1)
        json_path = tmp_path / "serial.json"
        csv_path = tmp_path / "serial.csv"
        result.write_json(json_path)
        result.write_csv(csv_path)
        return json_path.read_bytes(), csv_path.read_bytes()

    def test_single_worker_matches_serial_bytes(self, tmp_path, test_suite):
        serial_json, serial_csv = self._serial_artifacts(tmp_path, test_suite)
        clear_process_caches()
        store = ReportStore(tmp_path / "store")
        stats = run_shard(test_suite, shard="1/1", store=store,
                          y_values=Y_VALUES)
        assert stats.evaluated == stats.grid_cells == stats.own_cells
        assert stats.left_to_peers == 0

        clear_process_caches()  # merge must reassemble purely from disk
        merged = merge_shards(test_suite, store=ReportStore(tmp_path / "store"),
                              y_values=Y_VALUES)
        json_path = tmp_path / "merged.json"
        csv_path = tmp_path / "merged.csv"
        merged.write_json(json_path)
        merged.write_csv(csv_path)
        assert json_path.read_bytes() == serial_json
        assert csv_path.read_bytes() == serial_csv

    def test_two_sequential_workers_split_the_grid(self, store, test_suite):
        one = run_shard(test_suite, shard="1/2", store=store,
                        y_values=Y_VALUES, steal=False)
        two = run_shard(test_suite, shard="2/2", store=store,
                        y_values=Y_VALUES, steal=False)
        assert one.evaluated == one.own_cells
        assert two.evaluated == two.own_cells
        assert one.evaluated + two.evaluated == one.grid_cells
        assert one.stolen == two.stolen == 0
        assert two.left_to_peers == 0

    def test_worker_steals_absent_peers_cells(self, store, test_suite):
        stats = run_shard(test_suite, shard="1/2", store=store,
                          y_values=Y_VALUES)
        assert stats.evaluated == stats.grid_cells
        assert stats.stolen == stats.grid_cells - stats.own_cells > 0
        assert stats.left_to_peers == 0

    def test_worker_reclaims_a_dead_workers_lease(self, store, test_suite,
                                                  plan):
        # A "worker" that claimed a cell and died without storing a result.
        dead = LeaseManager(store.root, owner="dead-worker", ttl=0.2)
        victim = plan.unique_requests[0].memo_key
        assert dead.try_claim(victim) is not None

        clock = FakeClock()
        stats = run_shard(test_suite, shard="1/1", store=store,
                          y_values=Y_VALUES, lease_ttl=0.2,
                          clock=clock, sleep=clock.advance)
        assert stats.reclaimed_leases == 1
        assert stats.evaluated == stats.grid_cells
        assert stats.left_to_peers == 0

    def test_worker_leaves_a_live_peers_cell_alone(self, store, test_suite,
                                                   plan):
        peer = LeaseManager(store.root, owner="live-peer", ttl=5.0)
        victim = plan.unique_requests[0].memo_key
        peer_lease = peer.try_claim(victim)

        clock = FakeClock()
        renew_on_sleep = []

        def sleep(seconds):
            clock.advance(seconds)
            peer_lease.renew()  # the peer is alive: it keeps renewing
            renew_on_sleep.append(seconds)

        stats = run_shard(test_suite, shard="1/1", store=store,
                          y_values=Y_VALUES, lease_ttl=0.5,
                          clock=clock, sleep=sleep)
        assert stats.evaluated == stats.grid_cells - 1
        assert stats.left_to_peers == 1
        assert stats.reclaimed_leases == 0
        assert renew_on_sleep  # it actually waited on the peer

    def test_merge_refuses_incomplete_grid(self, store, test_suite):
        run_shard(test_suite, shard="1/2", store=store, y_values=Y_VALUES,
                  steal=False)
        with pytest.raises(ShardError, match="missing from the store"):
            merge_shards(test_suite, store=store, y_values=Y_VALUES)

    def test_merge_refuses_unknown_grid(self, store, test_suite):
        with pytest.raises(ShardError, match="no manifest"):
            merge_shards(test_suite, store=store, y_values=Y_VALUES)

    def test_merge_refuses_mismatched_manifest(self, store, test_suite, plan):
        run_shard(test_suite, shard="1/1", store=store, y_values=Y_VALUES)
        payload = store.read_manifest(plan.signature)
        payload["cells"] = payload["cells"] + 1
        store.write_manifest(plan.signature, payload)
        with pytest.raises(ShardError, match="grid"):
            merge_shards(test_suite, store=store, y_values=Y_VALUES)

    def test_status_tracks_progress(self, store, test_suite, plan):
        before = shard_status(test_suite, store=store, y_values=Y_VALUES)
        assert (before.stored, before.missing) == (0, before.cells)
        assert not before.complete

        run_shard(test_suite, shard="1/2", store=store, y_values=Y_VALUES,
                  steal=False)
        holder = LeaseManager(store.root, owner="worker-2", ttl=5.0)
        held = [request for request in plan.unique_requests
                if not store.contains(request.memo_key)]
        holder.try_claim(held[0].memo_key)

        during = shard_status(test_suite, store=store, y_values=Y_VALUES)
        assert during.stored + during.missing == during.cells
        assert during.missing == len(held)
        assert [view.owner for view in during.leases] == ["worker-2"]
        assert not during.complete

        run_shard(test_suite, shard="2/2", store=store, y_values=Y_VALUES)
        after = shard_status(test_suite, store=store, y_values=Y_VALUES)
        assert after.complete and after.missing == 0 and not after.leases
