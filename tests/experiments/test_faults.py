"""Injected faults must be invisible in artifacts and survivable in pools.

Covers the in-process fault drills: transient store I/O errors absorbed by
the retry policy, torn writes quarantined on the next read, and
``BrokenProcessPool`` recovery in the scheduler.  The cross-process drill
(a real SIGKILL) lives in ``test_crash_recovery.py``.
"""

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments import scheduler as scheduler_module
from repro.experiments.runner import clear_process_caches, memoized_reports
from repro.experiments.scheduler import EvaluationScheduler
from repro.experiments.store import ReportStore
from repro.experiments.sweep import plan_grid, sweep_grid
from repro.utils import faults
from repro.utils.faults import FaultInjector


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    faults.set_injector(FaultInjector())
    yield
    faults.set_injector(None)


@pytest.fixture()
def store(tmp_path):
    return ReportStore(tmp_path / "store")


class TestTransientStoreFaults:
    def test_load_retries_through_injected_oserror(self, store, test_suite):
        plan = plan_grid(test_suite, y_values=[0.05])
        request = plan.unique_requests[0]
        _, reports = scheduler_module._evaluate_request(request)
        store.store(request.memo_key, reports)

        faults.set_injector(FaultInjector.from_spec("store.load=2"))
        loaded = store.load(request.memo_key)
        assert loaded == reports  # both firings absorbed by the retry policy
        assert store.session.io_retries == 2
        assert faults.active().fired["store.load"] == 2

    def test_store_retries_through_injected_oserror(self, store, test_suite):
        plan = plan_grid(test_suite, y_values=[0.05])
        request = plan.unique_requests[0]
        _, reports = scheduler_module._evaluate_request(request)

        faults.set_injector(FaultInjector.from_spec("store.store=1"))
        store.store(request.memo_key, reports)
        assert store.session.io_retries == 1
        faults.set_injector(FaultInjector())
        assert store.load(request.memo_key) == reports

    def test_exhausted_budget_of_faults_still_raises(self, store, test_suite):
        """A *persistent* I/O failure (budget > attempts) must surface."""
        plan = plan_grid(test_suite, y_values=[0.05])
        request = plan.unique_requests[0]
        _, reports = scheduler_module._evaluate_request(request)
        store.store(request.memo_key, reports)

        faults.set_injector(FaultInjector.from_spec("store.load=100"))
        with pytest.raises(OSError, match="injected"):
            store.load(request.memo_key)

    def test_torn_write_quarantined_on_next_load(self, store, test_suite):
        plan = plan_grid(test_suite, y_values=[0.05])
        request = plan.unique_requests[0]
        _, reports = scheduler_module._evaluate_request(request)

        faults.set_injector(FaultInjector.from_spec("store.corrupt=1"))
        path = store.store(request.memo_key, reports)
        assert path.exists()  # written, then truncated behind our back

        assert store.load(request.memo_key) is None
        assert store.session.quarantined == 1
        # The miss is recoverable and the second write is clean.
        store.store(request.memo_key, reports)
        assert store.load(request.memo_key) == reports

    def test_sweep_artifacts_byte_identical_under_transient_faults(
            self, tmp_path, test_suite):
        clear_process_caches()
        clean = sweep_grid(test_suite, y_values=[0.05, 0.10], max_workers=1)
        clean_json = tmp_path / "clean.json"
        clean_csv = tmp_path / "clean.csv"
        clean.write_json(clean_json)
        clean.write_csv(clean_csv)

        clear_process_caches()
        faults.set_injector(
            FaultInjector.from_spec("store.load=2,store.store=2"))
        faulted = sweep_grid(test_suite, y_values=[0.05, 0.10], max_workers=1,
                             store=ReportStore(tmp_path / "store"))
        faulted_json = tmp_path / "faulted.json"
        faulted_csv = tmp_path / "faulted.csv"
        faulted.write_json(faulted_json)
        faulted.write_csv(faulted_csv)

        assert faulted_json.read_bytes() == clean_json.read_bytes()
        assert faulted_csv.read_bytes() == clean_csv.read_bytes()
        assert sum(faults.active().fired.values()) > 0  # the drill ran


class _FlakyPool:
    """Stands in for ProcessPoolExecutor; breaks on request, serial otherwise."""

    breaks_remaining = 0

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        self.max_workers = max_workers
        # The shared-memory attach initializer is exercised against a real
        # pool in tests/experiments/test_sweep_batch.py; this in-process
        # stand-in runs with the parent's caches already warm, so calling
        # it here would only re-attach the parent's own segment.
        self.initializer = initializer
        self.initargs = initargs

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def map(self, fn, items, chunksize=1):
        for index, item in enumerate(items):
            if _FlakyPool.breaks_remaining > 0 and index >= 1:
                _FlakyPool.breaks_remaining -= 1
                raise BrokenProcessPool("injected pool crash")
            yield fn(item)


class TestBrokenPoolRecovery:
    @pytest.fixture(autouse=True)
    def _flaky_pool(self, monkeypatch):
        monkeypatch.setattr(scheduler_module, "ProcessPoolExecutor",
                            _FlakyPool)
        _FlakyPool.breaks_remaining = 0
        yield

    def _cold_requests(self, test_suite):
        clear_process_caches()
        return list(plan_grid(test_suite,
                              y_values=[0.05, 0.10]).unique_requests)

    def test_single_break_respawns_and_finishes(self, test_suite, capsys):
        requests = self._cold_requests(test_suite)
        _FlakyPool.breaks_remaining = 1
        stats = EvaluationScheduler(max_workers=2,
                                    min_parallel_requests=2).prefetch(requests)
        assert stats.pool_restarts == 1
        assert not stats.degraded_serial
        assert stats.computed == len(requests)
        assert all(memoized_reports(r.memo_key) is not None for r in requests)
        assert "respawning the pool" in capsys.readouterr().err

    def test_second_break_degrades_to_serial(self, test_suite, capsys):
        requests = self._cold_requests(test_suite)
        _FlakyPool.breaks_remaining = 2
        stats = EvaluationScheduler(max_workers=2,
                                    min_parallel_requests=2).prefetch(requests)
        assert stats.pool_restarts == 2
        assert stats.degraded_serial
        assert all(memoized_reports(r.memo_key) is not None for r in requests)
        assert "degrading to serial" in capsys.readouterr().err

    def test_no_break_means_no_restarts(self, test_suite):
        requests = self._cold_requests(test_suite)
        stats = EvaluationScheduler(max_workers=2,
                                    min_parallel_requests=2).prefetch(requests)
        assert stats.pool_restarts == 0 and not stats.degraded_serial
