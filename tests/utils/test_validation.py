"""Tests for the argument-validation helpers."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-1, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="block_rows"):
            check_positive_int(-3, "block_rows")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative_int(-2, "x")


class TestPositive:
    def test_accepts_float(self):
        assert check_positive(0.5, "x") == 0.5

    def test_accepts_int(self):
        assert check_positive(2, "x") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("1", "x")


class TestNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestFraction:
    def test_accepts_half(self):
        assert check_fraction(0.5, "x") == 0.5

    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_accepts_endpoints_by_default(self, value):
        assert check_fraction(value, "x") == value

    def test_exclusive_low_rejects_zero(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive_low=False)

    def test_exclusive_high_rejects_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive_high=False)

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_fraction(value, "x")

    def test_probability_alias(self):
        assert check_probability(0.25, "x") == 0.25
