"""Retry policy and fault-injection switchboard."""

import random
import threading

import pytest

from repro.utils import faults
from repro.utils.faults import FaultInjector, FaultSpecError
from repro.utils.retry import (
    _JITTER_SEED,
    backoff_delays,
    reset_jitter_rng,
    retry_transient,
)


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    faults.set_injector(FaultInjector())
    yield
    faults.set_injector(None)


class TestRetryTransient:
    def test_success_first_try_never_sleeps(self):
        sleeps = []
        assert retry_transient(lambda: 42, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_transient_failures_then_success(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("hiccup")
            return "ok"

        sleeps = []
        retried = []
        assert retry_transient(flaky, attempts=4, sleep=sleeps.append,
                               on_retry=lambda e, i: retried.append(i)) == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2
        assert retried == [0, 1]

    def test_exhausted_attempts_reraise_last_error(self):
        def always():
            raise OSError("persistent")

        sleeps = []
        with pytest.raises(OSError, match="persistent"):
            retry_transient(always, attempts=3, sleep=sleeps.append)
        assert len(sleeps) == 2  # no sleep after the final failure

    def test_give_up_on_raises_immediately(self):
        """FileNotFoundError is a miss, not a transient fault: no backoff."""
        calls = {"n": 0}

        def miss():
            calls["n"] += 1
            raise FileNotFoundError("no entry")

        sleeps = []
        with pytest.raises(FileNotFoundError):
            retry_transient(miss, attempts=4,
                            give_up_on=(FileNotFoundError,),
                            sleep=sleeps.append)
        assert calls["n"] == 1 and sleeps == []

    def test_unlisted_exception_propagates(self):
        with pytest.raises(KeyError):
            retry_transient(lambda: {}["x"], attempts=4,
                            sleep=lambda _: None)

    def test_attempts_below_one_rejected(self):
        with pytest.raises(ValueError, match="attempts"):
            retry_transient(lambda: 1, attempts=0)


class TestBackoffSchedule:
    def test_exponential_capped_and_jitter_bounded(self):
        rng = random.Random(7)
        delays = backoff_delays(6, base_delay=0.02, max_delay=0.1, rng=rng)
        assert len(delays) == 5
        bases = [0.02, 0.04, 0.08, 0.1, 0.1]
        for delay, base in zip(delays, bases):
            assert base <= delay < base * 1.25

    def test_seeded_jitter_is_deterministic(self):
        a = backoff_delays(5, base_delay=0.01, max_delay=1.0,
                           rng=random.Random(3))
        b = backoff_delays(5, base_delay=0.01, max_delay=1.0,
                           rng=random.Random(3))
        assert a == b

    def test_jitter_decorrelates_workers(self):
        a = backoff_delays(5, base_delay=0.01, max_delay=1.0,
                           rng=random.Random(1))
        b = backoff_delays(5, base_delay=0.01, max_delay=1.0,
                           rng=random.Random(2))
        assert a != b


class TestThreadLocalDefaultJitter:
    """The *default* jitter stream (no ``rng=`` passed) under threads."""

    @pytest.fixture(autouse=True)
    def _fresh_default_stream(self):
        reset_jitter_rng()
        yield
        reset_jitter_rng()

    def test_worker_thread_schedule_unperturbed_by_main_thread_draws(self):
        """Regression: the default stream used to be one module-wide
        ``random.Random`` shared by every thread, so draws on the main
        thread advanced the state a server worker thread drew from — its
        backoff schedule depended on unrelated threads' retries."""
        expected = backoff_delays(5, base_delay=0.01, max_delay=1.0,
                                  rng=random.Random(_JITTER_SEED))
        # Main thread draws from *its* default stream first.  Pre-fix this
        # consumed the worker's values out of the shared generator.
        backoff_delays(5, base_delay=0.01, max_delay=1.0)

        result = {}

        def worker():
            result["delays"] = backoff_delays(5, base_delay=0.01,
                                              max_delay=1.0)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert result["delays"] == expected

    def test_concurrent_threads_each_get_the_full_seeded_schedule(self):
        expected = backoff_delays(4, base_delay=0.01, max_delay=1.0,
                                  rng=random.Random(_JITTER_SEED))
        n_threads = 8
        results = [None] * n_threads
        barrier = threading.Barrier(n_threads)

        def worker(index):
            barrier.wait()
            results[index] = backoff_delays(4, base_delay=0.01, max_delay=1.0)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [expected] * n_threads

    def test_reset_reseeds_caller_and_threads_started_later(self):
        reset_jitter_rng(1234)
        expected = backoff_delays(3, base_delay=0.01, max_delay=1.0,
                                  rng=random.Random(1234))
        assert backoff_delays(3, base_delay=0.01, max_delay=1.0) == expected

        result = {}

        def worker():
            result["delays"] = backoff_delays(3, base_delay=0.01,
                                              max_delay=1.0)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert result["delays"] == expected


class TestFaultInjector:
    def test_spec_round_trip(self):
        injector = FaultInjector.from_spec("store.load=2, shard.kill=1")
        assert injector.armed("store.load")
        assert injector.armed("shard.kill")
        assert not injector.armed("store.store")

    def test_budget_counts_down_then_disarms(self):
        injector = FaultInjector.from_spec("store.load=2")
        with pytest.raises(OSError, match="injected"):
            injector.maybe_raise("store.load")
        with pytest.raises(OSError, match="injected"):
            injector.maybe_raise("store.load")
        injector.maybe_raise("store.load")  # budget spent: no-op
        assert injector.fired["store.load"] == 2

    def test_bare_site_defaults_to_budget_one(self):
        injector = FaultInjector.from_spec("store.corrupt")
        assert injector.armed("store.corrupt")
        assert injector.consume("store.corrupt")
        assert not injector.consume("store.corrupt")

    def test_heartbeat_stall_is_persistent(self):
        injector = FaultInjector.from_spec("heartbeat.stall=1")
        assert all(injector.heartbeat_stalled() for _ in range(5))

    def test_unknown_site_rejected(self):
        with pytest.raises(FaultSpecError, match="unknown fault site"):
            FaultInjector.from_spec("store.explode=1")

    def test_bad_budget_rejected(self):
        with pytest.raises(FaultSpecError, match="bad fault budget"):
            FaultInjector.from_spec("store.load=lots")

    def test_corrupt_truncates_to_half(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_bytes(b"x" * 100)
        injector = FaultInjector.from_spec("store.corrupt=1")
        assert injector.maybe_corrupt(path)
        assert len(path.read_bytes()) == 50
        assert not injector.maybe_corrupt(path)  # disarmed

    def test_env_spec_parsed_lazily(self, monkeypatch):
        monkeypatch.setenv(faults.ENV_VAR, "store.load=3")
        faults.set_injector(None)  # force a re-read
        assert faults.active().armed("store.load")
        faults.set_injector(None)
        monkeypatch.delenv(faults.ENV_VAR)
        assert not faults.active().armed("store.load")
