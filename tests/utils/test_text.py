"""Tests for plain-text report formatting."""

import pytest

from repro.utils.text import format_histogram, format_series, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "b"], [(1, 2), (3, 4)])
        assert "a" in text and "b" in text
        assert "1" in text and "4" in text

    def test_title_is_first_line(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_floats_use_float_format(self):
        text = format_table(["x"], [(3.14159,)], float_fmt="{:.2f}")
        assert "3.14" in text

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_columns_aligned(self):
        text = format_table(["name", "v"], [("longer-name", 1), ("x", 22)])
        lines = text.splitlines()
        # All data lines have the value column starting at the same offset.
        assert lines[2].index("1") == lines[3].index("2")


class TestFormatSeries:
    def test_two_columns(self):
        text = format_series([1, 2, 3], [0.1, 0.2, 0.3], x_name="k", y_name="mae")
        assert "k" in text and "mae" in text
        assert "0.3" in text

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_series([1, 2], [1.0])


class TestFormatHistogram:
    def test_bars_scale_with_counts(self):
        text = format_histogram([0, 1, 2], [1, 10])
        lines = text.splitlines()
        assert lines[-1].count("#") > lines[-2].count("#")

    def test_requires_one_more_edge_than_count(self):
        with pytest.raises(ValueError):
            format_histogram([0, 1], [1, 2])

    def test_handles_all_zero_counts(self):
        text = format_histogram([0, 1, 2], [0, 0])
        assert "histogram" in text
