"""Tests for deterministic RNG handling."""

import numpy as np
import pytest

from repro.utils.rng import resolve_rng, spawn


class TestResolveRng:
    def test_none_gives_default_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_none_is_deterministic(self):
        a = resolve_rng(None).integers(0, 1000, size=8)
        b = resolve_rng(None).integers(0, 1000, size=8)
        assert np.array_equal(a, b)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, size=8)
        b = resolve_rng(42).integers(0, 1000, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = resolve_rng(1).integers(0, 10**9)
        b = resolve_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert resolve_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(resolve_rng(np.int64(5)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(0, 5)
        assert len(children) == 5
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_spawn_deterministic(self):
        a = [g.integers(0, 10**9) for g in spawn(7, 3)]
        b = [g.integers(0, 10**9) for g in spawn(7, 3)]
        assert a == b

    def test_spawn_children_independent(self):
        a, b = spawn(7, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_spawn_zero(self):
        assert spawn(1, 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(1, -1)
