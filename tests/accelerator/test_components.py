"""Tests for the accelerator building blocks: config, dataflow, AGEN, PEs."""

import pytest

from repro.accelerator.agen import AddressGenerator
from repro.accelerator.config import ArchitectureConfig, paper_extensor_config, scaled_default_config
from repro.accelerator.dataflow import DataflowSpec, extensor_dataflow
from repro.accelerator.intersection import (
    estimate_workload_intersections,
    exact_pair_intersections,
)
from repro.accelerator.pe import PEArray, ProcessingElement
from repro.tensor.einsum import MatmulWorkload
from repro.tensor.generators import uniform_random_matrix


class TestArchitectureConfig:
    def test_defaults_valid(self):
        config = scaled_default_config()
        assert config.num_pes > 0
        assert config.glb_fifo_words >= 1
        assert config.pe_fifo_words >= 1

    def test_paper_config_magnitudes(self):
        config = paper_extensor_config()
        assert config.num_pes == 128
        assert config.glb_capacity_words > 1_000_000
        assert config.dram_bandwidth_words_per_cycle > 10

    def test_traffic_words_per_nonzero(self):
        config = scaled_default_config()
        assert config.traffic_words_per_nonzero == pytest.approx(
            1.0 + config.metadata_words_per_nonzero)

    def test_with_overrides(self):
        config = scaled_default_config().with_overrides(num_pes=4)
        assert config.num_pes == 4
        assert config.glb_capacity_words == scaled_default_config().glb_capacity_words

    def test_cycles_to_seconds(self):
        config = scaled_default_config().with_overrides(frequency_hz=2.0e9)
        assert config.cycles_to_seconds(2.0e9) == pytest.approx(1.0)

    def test_invalid_fifo_fraction(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(glb_fifo_fraction=0.0)

    def test_invalid_pe_count(self):
        with pytest.raises(ValueError):
            ArchitectureConfig(num_pes=0)


class TestDataflow:
    def test_default_is_a_stationary(self):
        assert extensor_dataflow().stationary_operand == "A"

    def test_pass_counts(self):
        dataflow = extensor_dataflow()
        assert dataflow.stationary_passes(7) == 7
        assert dataflow.stationary_passes(0) == 1
        assert dataflow.streaming_fetch_rounds(3) == 3

    def test_invalid_operand(self):
        with pytest.raises(ValueError):
            DataflowSpec(name="bad", stationary_operand="C")

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            extensor_dataflow().stationary_passes(-1)


class TestAddressGenerator:
    def test_scan_counts(self, tiny_dense_matrix):
        agen = AddressGenerator(tiny_dense_matrix)
        counts = agen.scan_counts()
        assert counts.value_words == tiny_dense_matrix.nnz
        assert counts.metadata_words == agen.csf.metadata_words
        assert counts.total_words == counts.value_words + counts.metadata_words

    def test_scan_counts_scale_with_passes(self, tiny_dense_matrix):
        agen = AddressGenerator(tiny_dense_matrix)
        assert agen.scan_counts(3).value_words == 3 * tiny_dense_matrix.nnz

    def test_scan_trace_order_and_length(self, tiny_dense_matrix):
        trace = AddressGenerator(tiny_dense_matrix).scan_trace()
        assert len(trace) == tiny_dense_matrix.nnz
        rows = [r for r, _, _ in trace]
        assert rows == sorted(rows)

    def test_fill_requests_are_indexed(self, tiny_dense_matrix):
        requests = list(AddressGenerator(tiny_dense_matrix).iter_fill_requests())
        assert [i for i, _ in requests] == list(range(tiny_dense_matrix.nnz))


class TestIntersection:
    def test_exact_pairs_identity(self):
        eye = uniform_random_matrix(6, 6, 6, rng=0)
        workload = MatmulWorkload.gram(eye)
        assert exact_pair_intersections(workload) > 0

    def test_estimate_close_to_exact_on_small_workload(self):
        matrix = uniform_random_matrix(40, 40, 300, rng=1)
        workload = MatmulWorkload.gram(matrix)
        exact = exact_pair_intersections(workload)
        estimate = estimate_workload_intersections(workload, sample_rows=40, rng=0)
        assert estimate == pytest.approx(exact, rel=0.01)

    def test_estimate_scales_samples(self):
        matrix = uniform_random_matrix(100, 100, 1500, rng=2)
        workload = MatmulWorkload.gram(matrix)
        estimate = estimate_workload_intersections(workload, sample_rows=20, rng=0)
        exact = exact_pair_intersections(workload)
        assert estimate == pytest.approx(exact, rel=0.4)


class TestPEArray:
    def test_single_pe_cycles(self):
        pe = ProcessingElement(macs_per_cycle=1.0)
        assert pe.compute_cycles(1000) == 1000

    def test_array_divides_work(self):
        array = PEArray(num_pes=10, utilization=1.0)
        assert array.compute_cycles(1000) == pytest.approx(100)

    def test_utilization_derating(self):
        ideal = PEArray(num_pes=4, utilization=1.0).compute_cycles(400)
        derated = PEArray(num_pes=4, utilization=0.5).compute_cycles(400)
        assert derated == pytest.approx(2 * ideal)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            PEArray(num_pes=4, utilization=0.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            ProcessingElement().compute_cycles(-1)
