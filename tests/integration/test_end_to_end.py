"""Integration tests: the full pipeline from matrix generation to reports."""

import pytest

from repro import (
    AcceleratorVariant,
    ExTensorModel,
    SwiftilesConfig,
    WorkloadDescriptor,
    scaled_default_config,
)
from repro.core.overbooking import OverbookingTiler, PrescientTiler
from repro.core.reuse import analytic_tailors_fetches
from repro.model.traffic import FetchPolicy, operand_fetches
from repro.tensor.generators import power_law_matrix


@pytest.fixture(scope="module")
def skewed_matrix():
    return power_law_matrix(1200, 18_000, alpha=1.5, rng=4, name="integration-graph")


class TestEndToEndPipeline:
    def test_overbooking_beats_prescient_on_skewed_workload(self, skewed_matrix):
        """The headline claim, end to end on a freshly generated workload."""
        config = scaled_default_config().with_overrides(glb_capacity_words=2048)
        model = ExTensorModel(config)
        reports = model.evaluate_matrix(skewed_matrix)
        prescient = reports["ExTensor-P"]
        overbooked = reports["ExTensor-OB"]
        assert overbooked.speedup_over(prescient) > 1.0
        assert overbooked.energy_ratio_over(prescient) > 0.9
        assert overbooked.glb_overbooking_rate > 0.0

    def test_traffic_consistency_with_tiling(self, skewed_matrix):
        """The engine's DRAM stationary traffic matches a hand computation."""
        config = scaled_default_config().with_overrides(glb_capacity_words=2048)
        model = ExTensorModel(config)
        workload = WorkloadDescriptor.gram(skewed_matrix)
        report = model.evaluate_variant(
            workload, AcceleratorVariant.overbooking(rng_seed=7))

        tiler = OverbookingTiler(SwiftilesConfig(overbooking_target=0.10), rng=7)
        tiling_a = tiler.tile(skewed_matrix, config.glb_capacity_words)
        # Column blocks of B = A^T are row blocks of (A^T)^T = A.
        tiling_b = tiler.tile(skewed_matrix, config.glb_capacity_words)
        import numpy as np
        chunks_b = int(np.ceil(
            tiling_b.tiling.occupancies() / config.glb_capacity_words).sum())
        passes = max(1, tiling_b.tiling.num_tiles, chunks_b)
        expected = operand_fetches(
            tiling_a.tiling.occupancies(), config.glb_capacity_words,
            fifo_words=config.glb_fifo_words, passes=passes,
            policy=FetchPolicy.TAILORS).sum() * config.traffic_words_per_nonzero
        assert report.traffic.dram.stationary_reads == pytest.approx(expected, rel=1e-6)

    def test_reuse_accounting_consistent_with_traffic_model(self):
        """The closed form used by the engine matches the per-tile policy."""
        import numpy as np
        occupancies = np.array([500, 2000, 9000])
        capacity, fifo, passes = 4096, 512, 7
        vectorized = operand_fetches(occupancies, capacity, fifo_words=fifo,
                                     passes=passes, policy=FetchPolicy.TAILORS)
        scalar = [analytic_tailors_fetches(int(o), capacity, fifo, passes)
                  for o in occupancies]
        assert list(vectorized) == scalar

    def test_prescient_matches_paper_definition(self, skewed_matrix):
        """ExTensor-P uses the largest block whose worst tile fits the buffer."""
        capacity = 2048
        result = PrescientTiler().tile(skewed_matrix, capacity)
        occ = skewed_matrix.row_block_occupancies(result.block_rows)
        assert occ.max() <= capacity

    def test_sweeping_y_changes_tile_size_monotonically(self, skewed_matrix):
        sizes = []
        for y in (0.02, 0.10, 0.30, 0.60):
            tiler = OverbookingTiler(
                SwiftilesConfig(overbooking_target=y, sample_all_tiles=True))
            sizes.append(tiler.tile(skewed_matrix, 2048).tile_size)
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_functional_correctness_of_workload(self, skewed_matrix):
        """The modeled workload's operation counts agree with a real multiply."""
        workload = WorkloadDescriptor.gram(skewed_matrix)
        product = workload.matmul.reference_result()
        assert workload.output_nonzeros == product.nnz
