"""Shared fixtures for the unit/integration test suite."""

import numpy as np
import pytest

from repro.tensor.generators import banded_matrix, power_law_matrix, uniform_random_matrix
from repro.tensor.sparse import SparseMatrix
from repro.tensor.suite import small_suite


@pytest.fixture
def tiny_dense_matrix() -> SparseMatrix:
    """A 4x4 matrix with a handful of nonzeros at known positions."""
    dense = np.array([
        [1.0, 0.0, 2.0, 0.0],
        [0.0, 0.0, 0.0, 0.0],
        [3.0, 0.0, 0.0, 4.0],
        [0.0, 5.0, 0.0, 0.0],
    ])
    return SparseMatrix.from_dense(dense, name="tiny")


@pytest.fixture
def banded() -> SparseMatrix:
    """A small FEM-like banded matrix."""
    return banded_matrix(200, bandwidth=6, band_fill=0.8, off_band_nnz=200, rng=1,
                         name="banded-200")


@pytest.fixture
def powerlaw() -> SparseMatrix:
    """A small power-law graph adjacency matrix."""
    return power_law_matrix(300, 3000, alpha=1.6, rng=2, name="powerlaw-300")


@pytest.fixture
def uniform() -> SparseMatrix:
    """A small uniformly random matrix."""
    return uniform_random_matrix(150, 150, 1500, rng=3, name="uniform-150")


@pytest.fixture(scope="session")
def test_suite():
    """The three-workload test suite (session-scoped: built once)."""
    return small_suite()


@pytest.fixture(autouse=True)
def no_leaked_shared_memory():
    """Fail any test that leaves a shared-memory suite segment exported.

    Every :func:`repro.tensor.shm.export_suite` must be paired with a
    release; an unreleased segment would outlive the process as a file in
    ``/dev/shm``.  Checked after every test so the leaking test is the one
    that fails.
    """
    yield
    from repro.tensor import shm

    leaked = shm.active_segments()
    if leaked:
        shm.release_all()  # don't let one leak cascade into later tests
        raise AssertionError(f"leaked shared-memory segments: {leaked}")
