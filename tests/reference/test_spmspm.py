"""Tests for the Gustavson reference SpMSpM implementation."""

import numpy as np

from repro.reference.spmspm import gustavson_spmspm, multiply_count
from repro.tensor.einsum import count_spmspm_operations
from repro.tensor.generators import uniform_random_matrix
from repro.tensor.sparse import SparseMatrix


class TestGustavson:
    def test_matches_scipy_on_tiny(self, tiny_dense_matrix):
        ours = gustavson_spmspm(tiny_dense_matrix, tiny_dense_matrix.transpose())
        scipy_result = tiny_dense_matrix.gram()
        assert np.allclose(ours.to_dense(), scipy_result.to_dense())

    def test_matches_scipy_on_random(self):
        a = uniform_random_matrix(30, 25, 150, rng=0)
        b = uniform_random_matrix(25, 40, 180, rng=1)
        ours = gustavson_spmspm(a, b)
        assert np.allclose(ours.to_dense(), (a.csr @ b.csr).toarray())

    def test_identity(self):
        eye = SparseMatrix.identity(8)
        assert gustavson_spmspm(eye, eye) == eye

    def test_dimension_mismatch(self, tiny_dense_matrix):
        try:
            gustavson_spmspm(tiny_dense_matrix, SparseMatrix.identity(3))
        except ValueError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected ValueError")


class TestMultiplyCount:
    def test_matches_einsum_counting(self):
        a = uniform_random_matrix(40, 30, 200, rng=2)
        b = uniform_random_matrix(30, 35, 210, rng=3)
        assert multiply_count(a, b) == count_spmspm_operations(a, b).effectual_multiplies

    def test_gram_count(self, tiny_dense_matrix):
        b = tiny_dense_matrix.transpose()
        assert multiply_count(tiny_dense_matrix, b) == \
            count_spmspm_operations(tiny_dense_matrix, b).effectual_multiplies
