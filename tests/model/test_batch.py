"""Differential tests: the batched grid evaluator vs. the per-point engine.

The batch engine (:mod:`repro.model.batch`) promises *bit-identical* reports
to ``AnalyticalEngine.evaluate`` — not merely within tolerance — so every
comparison here uses exact ``==`` on floats.  The acceptance bar of the PR
(agreement to 1e-9) is implied.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import ArchitectureConfig, scaled_default_config
from repro.accelerator.extensor import AcceleratorVariant, ExTensorModel
from repro.model.batch import (
    BatchWorkloadEvaluator,
    config_grid,
    evaluate_workload_grid,
)
from repro.model.workload import WorkloadDescriptor
from repro.tensor.kernels import kernel_names
from repro.tensor.suite import synth_suite


def golden_reports(workload, architecture, overbooking_target):
    """The per-point engine's reports for one grid cell (the reference)."""
    variants = [
        AcceleratorVariant.naive(),
        AcceleratorVariant.prescient(),
        AcceleratorVariant.overbooking(overbooking_target=overbooking_target),
    ]
    model = ExTensorModel(architecture=architecture, variants=variants)
    return model.evaluate_workload(workload)


def assert_reports_match(got, want, context=""):
    """Exact equality, itemized first so failures name the diverging field."""
    assert list(got) == list(want), context
    for name in want:
        g, w = got[name], want[name]
        assert g.cycles == w.cycles, (context, name, "cycles")
        assert g.bound == w.bound, (context, name, "bound")
        assert g.energy.as_dict() == w.energy.as_dict(), (context, name, "energy")
        for level in ("dram", "global_buffer"):
            g_level = getattr(g.traffic, level)
            w_level = getattr(w.traffic, level)
            for field in ("stationary_reads", "stationary_baseline",
                          "streaming_reads", "output_writes"):
                assert getattr(g_level, field) == getattr(w_level, field), \
                    (context, name, level, field)
        assert g.details == w.details, (context, name, "details")
        # Full dataclass equality sweeps up every remaining field.
        assert g == w, (context, name)


SMALL_GRID = dict(
    y_values=(0.05, 0.10, 0.22),
    glb_capacities=(2048, 8192),
    pe_buffer_capacities=(128, 256),
    num_pes=(4, 16, 64),
)


class TestDifferentialAgainstEngine:
    @pytest.mark.parametrize("kernel", kernel_names())
    def test_matches_engine_across_kernels(self, test_suite, kernel):
        configs = config_grid(scaled_default_config(), **SMALL_GRID)
        for name in test_suite.names:
            workload = WorkloadDescriptor.from_suite(test_suite, name,
                                                     kernel=kernel)
            batched = evaluate_workload_grid(workload, configs)
            for (architecture, y), got in zip(configs, batched):
                want = golden_reports(workload, architecture, y)
                assert_reports_match(got, want, f"{kernel}/{name}/y={y}")

    def test_matches_engine_on_synth_models(self):
        suite = synth_suite([
            "uniform:n=200,nnz=2400",
            "power_law_rows:n=220,nnz=2600,alpha=1.7",
            "banded:n=240,bandwidth=10",
        ])
        configs = config_grid(scaled_default_config(),
                              y_values=(0.10, 0.30),
                              glb_capacities=(4096,),
                              pe_buffer_capacities=(256,),
                              num_pes=(16, 128))
        for name in suite.names:
            workload = WorkloadDescriptor.from_suite(suite, name)
            batched = evaluate_workload_grid(workload, configs)
            for (architecture, y), got in zip(configs, batched):
                want = golden_reports(workload, architecture, y)
                assert_reports_match(got, want, f"synth/{name}/y={y}")

    def test_unprimed_single_cell_matches(self, test_suite):
        workload = WorkloadDescriptor.from_suite(test_suite,
                                                 test_suite.names[0])
        evaluator = BatchWorkloadEvaluator(workload)
        architecture = scaled_default_config().with_overrides(num_pes=32)
        got = evaluator.reports(architecture, 0.17)
        want = golden_reports(workload, architecture, 0.17)
        assert_reports_match(got, want, "unprimed")

    def test_variant_key_order_matches_model(self, test_suite):
        workload = WorkloadDescriptor.from_suite(test_suite,
                                                 test_suite.names[1])
        architecture = scaled_default_config()
        got = BatchWorkloadEvaluator(workload).reports(architecture, 0.10)
        want = ExTensorModel(architecture=architecture).evaluate_workload(
            workload)
        assert list(got) == list(want)

    def test_shared_y_axis_dedups_naive_and_prescient(self, test_suite):
        workload = WorkloadDescriptor.from_suite(test_suite,
                                                 test_suite.names[0])
        evaluator = BatchWorkloadEvaluator(workload)
        architecture = scaled_default_config()
        low = evaluator.reports(architecture, 0.05)
        high = evaluator.reports(architecture, 0.30)
        naive = AcceleratorVariant.naive().name
        prescient = AcceleratorVariant.prescient().name
        # Same objects, not merely equal: the y axis shares one evaluation.
        assert low[naive] is high[naive]
        assert low[prescient] is high[prescient]


class TestRandomGrids:
    """Hypothesis: any random grid agrees with the per-point engine."""

    @settings(max_examples=12, deadline=None)
    @given(data=st.data())
    def test_random_grid_matches_engine(self, data):
        y_values = data.draw(st.lists(
            st.floats(min_value=0.01, max_value=0.45),
            min_size=1, max_size=3), label="y_values")
        glb = data.draw(st.lists(st.integers(min_value=256, max_value=16384),
                                 min_size=1, max_size=2, unique=True),
                        label="glb_capacities")
        pe = data.draw(st.lists(st.integers(min_value=32, max_value=1024),
                                min_size=1, max_size=2, unique=True),
                       label="pe_buffer_capacities")
        pes = data.draw(st.lists(st.integers(min_value=1, max_value=512),
                                 min_size=1, max_size=2, unique=True),
                        label="num_pes")

        from repro.tensor.generators import banded_matrix

        matrix = banded_matrix(180, bandwidth=7, band_fill=0.75,
                               off_band_nnz=250, rng=11, name="hyp-banded")
        workload = WorkloadDescriptor.gram(matrix)
        configs = config_grid(scaled_default_config(), y_values=y_values,
                              glb_capacities=glb, pe_buffer_capacities=pe,
                              num_pes=pes)
        batched = evaluate_workload_grid(workload, configs)
        # Aligned with the configs (duplicated y values included), and every
        # cell bit-identical to the golden engine.
        assert len(batched) == len(configs)
        for (architecture, y), got in zip(configs, batched):
            want = golden_reports(workload, architecture, y)
            assert_reports_match(got, want, f"hyp/y={y}")


class TestConfigGrid:
    def test_axis_order_and_base_reuse(self):
        base = scaled_default_config()
        configs = config_grid(base, y_values=(0.1, 0.2),
                              num_pes=(base.num_pes, 64))
        assert [(a.num_pes, y) for a, y in configs] == [
            (base.num_pes, 0.1), (base.num_pes, 0.2), (64, 0.1), (64, 0.2)]
        # Cells at the base architecture reuse the object (no copies).
        assert configs[0][0] is base

    def test_defaults_stay_at_base(self):
        base = scaled_default_config()
        configs = config_grid(base, y_values=(0.1,))
        assert configs == [(base, 0.1)]


class TestArchitectureHashCache:
    def test_hash_stable_and_consistent_with_eq(self):
        a = ArchitectureConfig(num_pes=32)
        b = ArchitectureConfig(num_pes=32)
        assert a == b and hash(a) == hash(b)
        assert hash(a) == hash(a)  # second call hits the cache

    def test_cached_hash_not_pickled(self):
        import pickle

        a = ArchitectureConfig(num_pes=32)
        hash(a)  # populate the cache
        assert "_hash" in a.__dict__
        restored = pickle.loads(pickle.dumps(a))
        assert "_hash" not in restored.__dict__
        assert restored == a and hash(restored) == hash(a)
