"""Tests for the analytical engine, result containers, and variant wiring."""

import math

import pytest

from repro.accelerator.config import scaled_default_config
from repro.accelerator.extensor import (
    AcceleratorVariant,
    ExTensorModel,
    default_variants,
)
from repro.model.sparsity import TileOccupancyModel
from repro.model.stats import (
    ComparisonRow,
    PerformanceReport,
    arithmetic_mean,
    comparison_summary,
    geometric_mean,
)
from repro.model.workload import WorkloadDescriptor
from repro.core.overbooking import PrescientTiler


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.0]) == pytest.approx(7.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0

    def test_comparison_summary(self):
        rows = [ComparisonRow("a", 2.0, 4.0), ComparisonRow("b", 8.0, 16.0)]
        summary = comparison_summary(rows)
        assert summary.workload == "geomean"
        assert summary.prescient_vs_naive == pytest.approx(4.0)
        assert summary.overbooking_vs_prescient == pytest.approx(2.0)

    def test_comparison_summary_empty(self):
        assert comparison_summary([]) is None


class TestWorkloadDescriptor:
    def test_gram_construction(self, powerlaw):
        workload = WorkloadDescriptor.gram(powerlaw)
        assert workload.name == powerlaw.name
        assert workload.b == powerlaw.transpose()

    def test_counts_cached(self, powerlaw):
        workload = WorkloadDescriptor.gram(powerlaw)
        first = workload.operation_counts
        assert workload.operation_counts is first

    def test_summary_keys(self, powerlaw):
        summary = WorkloadDescriptor.gram(powerlaw).summary()
        assert {"name", "rows", "nnz", "effectual_multiplies"} <= set(summary)

    def test_footprint(self, powerlaw):
        workload = WorkloadDescriptor.gram(powerlaw)
        assert workload.footprint_nonzeros == 2 * powerlaw.nnz


class TestTileOccupancyModel:
    def test_from_tiler(self, powerlaw):
        model = TileOccupancyModel.from_tiler(
            powerlaw, PrescientTiler(), operand="A", level="global_buffer",
            capacity=400, fifo_words=50)
        assert model.total_nonzeros == powerlaw.nnz
        assert model.overbooking_rate == 0.0
        assert 0.0 <= model.buffer_utilization <= 1.0
        assert model.bumped_elements == 0
        assert model.stats is not None

    def test_resident_capacity(self, powerlaw):
        model = TileOccupancyModel.from_tiler(
            powerlaw, PrescientTiler(), operand="A", level="pe_buffer",
            capacity=100, fifo_words=30)
        assert model.resident_capacity == 70


class TestExTensorModel:
    @pytest.fixture(scope="class")
    def reports(self, test_suite):
        model = ExTensorModel()
        return model.evaluate_matrix(test_suite.matrix("tiny-fem")), model

    def test_all_variants_present(self, reports):
        result, model = reports
        assert set(result) == set(model.variant_names())

    def test_reports_are_positive(self, reports):
        result, _ = reports
        for report in result.values():
            assert report.cycles > 0
            assert report.total_energy_pj > 0
            assert report.dram_words > 0

    def test_bound_is_labelled(self, reports):
        result, _ = reports
        assert all(r.bound in ("dram", "glb", "compute") for r in result.values())

    def test_sparsity_aware_variants_beat_naive(self, reports):
        result, _ = reports
        naive = result["ExTensor-N"]
        assert result["ExTensor-P"].speedup_over(naive) > 1.0
        assert result["ExTensor-OB"].speedup_over(naive) > 1.0

    def test_effectual_multiplies_identical_across_variants(self, reports):
        result, _ = reports
        values = {r.effectual_multiplies for r in result.values()}
        assert len(values) == 1

    def test_prescient_never_overbooks(self, reports):
        result, _ = reports
        assert result["ExTensor-P"].glb_overbooking_rate == 0.0

    def test_speedup_and_energy_helpers(self, reports):
        result, _ = reports
        naive = result["ExTensor-N"]
        assert naive.speedup_over(naive) == pytest.approx(1.0)
        assert naive.energy_ratio_over(naive) == pytest.approx(1.0)

    def test_variant_naming(self):
        assert AcceleratorVariant.overbooking().name == "ExTensor-OB"
        assert "25%" in AcceleratorVariant.overbooking(overbooking_target=0.25).name

    def test_default_variants(self):
        names = [v.name for v in default_variants()]
        assert names == ["ExTensor-N", "ExTensor-P", "ExTensor-OB"]

    def test_evaluate_variant_single(self, test_suite):
        model = ExTensorModel()
        workload = WorkloadDescriptor.gram(test_suite.matrix("tiny-social"))
        report = model.evaluate_variant(workload, AcceleratorVariant.prescient())
        assert isinstance(report, PerformanceReport)
        assert report.variant == "ExTensor-P"

    def test_larger_buffer_never_hurts_prescient(self, test_suite):
        workload = WorkloadDescriptor.gram(test_suite.matrix("tiny-social"))
        small = ExTensorModel(scaled_default_config().with_overrides(glb_capacity_words=512))
        large = ExTensorModel(scaled_default_config().with_overrides(glb_capacity_words=8192))
        cycles_small = small.evaluate_variant(workload, AcceleratorVariant.prescient()).cycles
        cycles_large = large.evaluate_variant(workload, AcceleratorVariant.prescient()).cycles
        assert cycles_large <= cycles_small * 1.001

    def test_traffic_overhead_zero_for_prescient(self, reports):
        result, _ = reports
        assert result["ExTensor-P"].traffic.dram_overhead_fraction == pytest.approx(0.0)

    def test_data_reuse_fraction_bounds(self, reports):
        result, _ = reports
        for report in result.values():
            assert 0.0 <= report.data_reuse_fraction <= 1.0

    def test_details_present(self, reports):
        result, _ = reports
        details = result["ExTensor-OB"].details
        assert details["num_a_glb_tiles"] >= 1
        assert not math.isnan(details["dram_cycles"])
