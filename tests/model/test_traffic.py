"""Tests for the per-level traffic equations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model.traffic import (
    FetchPolicy,
    LevelTraffic,
    operand_fetches,
    stationary_level_traffic,
)


class TestOperandFetches:
    def test_fit_policy_fetches_once_when_fitting(self):
        fetches = operand_fetches(np.array([10, 20]), 50, fifo_words=5, passes=4,
                                  policy=FetchPolicy.FIT)
        assert list(fetches) == [10, 20]

    def test_buffet_refetches_whole_tile(self):
        fetches = operand_fetches(np.array([100]), 50, fifo_words=5, passes=3,
                                  policy=FetchPolicy.BUFFET)
        assert list(fetches) == [300]

    def test_tailors_streams_only_bumped(self):
        fetches = operand_fetches(np.array([100]), 50, fifo_words=10, passes=3,
                                  policy=FetchPolicy.TAILORS)
        # resident = 40, bumped = 60 -> 40 + 60*3.
        assert list(fetches) == [220]

    def test_tailors_equals_fit_when_fitting(self):
        occupancies = np.array([5, 49, 50])
        a = operand_fetches(occupancies, 50, fifo_words=10, passes=7, policy=FetchPolicy.FIT)
        b = operand_fetches(occupancies, 50, fifo_words=10, passes=7,
                            policy=FetchPolicy.TAILORS)
        assert np.array_equal(a, b)

    def test_mixed_tiles(self):
        fetches = operand_fetches(np.array([10, 200]), 100, fifo_words=20, passes=2,
                                  policy=FetchPolicy.TAILORS)
        assert fetches[0] == 10
        assert fetches[1] == 80 + 120 * 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            operand_fetches(np.array([1]), 0, fifo_words=1, passes=1, policy=FetchPolicy.FIT)


class TestLevelTraffic:
    def make(self):
        return LevelTraffic(level="dram", stationary_reads=150.0,
                            stationary_baseline=100.0, streaming_reads=300.0,
                            output_writes=50.0)

    def test_totals(self):
        traffic = self.make()
        assert traffic.total_reads == 450.0
        assert traffic.total_words == 500.0

    def test_streaming_overhead(self):
        assert self.make().streaming_overhead == 50.0

    def test_overhead_fraction(self):
        traffic = self.make()
        assert traffic.overhead_fraction == pytest.approx(50.0 / 450.0)

    def test_no_overhead_when_reads_match_baseline(self):
        traffic = LevelTraffic(level="x", stationary_reads=100.0,
                               stationary_baseline=100.0, streaming_reads=10.0,
                               output_writes=0.0)
        assert traffic.streaming_overhead == 0.0
        assert traffic.overhead_fraction == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LevelTraffic(level="x", stationary_reads=-1.0, stationary_baseline=0.0,
                         streaming_reads=0.0, output_writes=0.0)


class TestStationaryLevelTraffic:
    def test_assembly(self):
        traffic = stationary_level_traffic(
            level="dram",
            occupancies=np.array([100, 100]),
            capacity=150,
            fifo_words=10,
            streaming_tiles=4,
            streaming_nonzeros=1000,
            output_nonzeros=200,
            words_per_nonzero=2.0,
            output_words_per_nonzero=2.0,
            policy=FetchPolicy.TAILORS,
        )
        assert traffic.stationary_reads == pytest.approx(400.0)   # both tiles fit
        assert traffic.stationary_baseline == pytest.approx(400.0)
        assert traffic.streaming_reads == pytest.approx(2 * 1000 * 2.0)
        assert traffic.output_writes == pytest.approx(400.0)

    def test_overbooked_stationary_tile(self):
        traffic = stationary_level_traffic(
            level="dram",
            occupancies=np.array([200]),
            capacity=100,
            fifo_words=20,
            streaming_tiles=3,
            streaming_nonzeros=500,
            output_nonzeros=0,
            words_per_nonzero=1.0,
            output_words_per_nonzero=1.0,
            policy=FetchPolicy.TAILORS,
        )
        assert traffic.stationary_reads == pytest.approx(80 + 120 * 3)
        assert traffic.streaming_overhead == pytest.approx(80 + 120 * 3 - 200)


@settings(max_examples=30, deadline=None)
@given(
    occupancies=st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=30),
    capacity=st.integers(min_value=2, max_value=300),
    passes=st.integers(min_value=1, max_value=6),
)
def test_property_policy_ordering(occupancies, capacity, passes):
    """For every tile: ideal (fit) <= Tailors <= buffet fetches."""
    occ = np.array(occupancies)
    fifo = max(1, capacity // 8)
    fit = operand_fetches(occ, capacity, fifo_words=fifo, passes=passes,
                          policy=FetchPolicy.FIT)
    tailors = operand_fetches(occ, capacity, fifo_words=fifo, passes=passes,
                              policy=FetchPolicy.TAILORS)
    buffet = operand_fetches(occ, capacity, fifo_words=fifo, passes=passes,
                             policy=FetchPolicy.BUFFET)
    assert np.all(occ <= tailors)
    assert np.all(tailors <= buffet)
    assert np.all(fit[occ <= capacity] == occ[occ <= capacity])
