"""Docs stay true: links resolve, public modules are documented, CLI help
matches the reference.

This is the tier-1 twin of CI's docs smoke step: if a file rename orphans a
README link, a new subcommand ships without a ``docs/CLI.md`` section, or a
public module loses its docstring, a test fails here rather than a reader
finding out.
"""

import importlib
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "scripts"))

import check_docs  # noqa: E402  (scripts/check_docs.py)

#: The public surfaces the ISSUE requires module docstrings on, plus the new
#: store/search modules.
DOCUMENTED_MODULES = (
    "repro.experiments.scheduler",
    "repro.experiments.sweep",
    "repro.experiments.registry",
    "repro.experiments.store",
    "repro.experiments.search",
    "repro.experiments.shard",
    "repro.tensor.synth",
    "repro.tensor.kernels",
    "repro.tensor.corpus",
    "repro.utils.faults",
    "repro.utils.retry",
)


class TestDocFiles:
    def test_architecture_and_cli_docs_exist(self):
        assert (REPO_ROOT / "docs" / "ARCHITECTURE.md").exists()
        assert (REPO_ROOT / "docs" / "CLI.md").exists()

    def test_all_relative_links_resolve(self):
        problems = check_docs.check_docs(REPO_ROOT)
        assert problems == []

    def test_readme_links_the_docs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "docs/ARCHITECTURE.md" in readme
        assert "docs/CLI.md" in readme

    def test_architecture_names_every_layer(self):
        text = (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()
        for layer in ("repro.tensor", "repro.tiling", "repro.buffers",
                      "repro.core", "repro.model", "repro.accelerator",
                      "repro.energy", "repro.experiments"):
            assert layer.split(".", 1)[1] in text, layer
        # The contracts the store relies on are walked through explicitly.
        assert "cache_token" in text or "cache token" in text
        assert "suite_from_token" in text

    def test_cli_doc_covers_every_subcommand(self):
        from repro.cli import build_parser

        text = (REPO_ROOT / "docs" / "CLI.md").read_text()
        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if isinstance(action, __import__("argparse")._SubParsersAction))
        for name in subparsers.choices:
            assert f"`{name}`" in text, f"docs/CLI.md lacks `{name}`"
        # The overwrite guard is documented (ISSUE satellite).
        assert "--force" in text and "--resume" in text

    def test_broken_link_detected(self, tmp_path):
        (tmp_path / "docs").mkdir()
        page = tmp_path / "docs" / "page.md"
        page.write_text("see [missing](nonesuch.md) and "
                        "[ok](https://example.com) and [anchor](#section)\n"
                        "```\n[in a fence](also-missing.md)\n```\n")
        problems = check_docs.check_file(page, tmp_path)
        assert problems == ["docs/page.md: broken link -> nonesuch.md"]


class TestModuleDocstrings:
    @pytest.mark.parametrize("module_name", DOCUMENTED_MODULES)
    def test_public_surface_has_a_real_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 200, (
            f"{module_name} needs a substantive module docstring")


class TestCliHelp:
    def test_python_m_repro_help_runs(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True, text=True, timeout=120,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"},
            cwd=REPO_ROOT)
        assert result.returncode == 0, result.stderr
        for name in ("list", "run", "sweep", "search", "store"):
            assert name in result.stdout
