"""Tests for occupancy-distribution statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tiling.stats import OccupancyStats, utilization_timeline


class TestOccupancyStats:
    def make(self):
        return OccupancyStats([0, 10, 20, 30, 40, 50, 60, 70, 80, 90])

    def test_basic_statistics(self):
        stats = self.make()
        assert stats.count == 10
        assert stats.max == 90
        assert stats.mean == pytest.approx(45.0)
        assert stats.total == pytest.approx(450.0)

    def test_percentile(self):
        assert self.make().percentile(50) == pytest.approx(45.0)

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            self.make().percentile(101)

    def test_quantile_for_overbooking(self):
        stats = self.make()
        # 10% of tiles exceed the 90% quantile.
        assert stats.quantile_for_overbooking(0.10) == pytest.approx(81.0)
        assert stats.quantile_for_overbooking(0.0) == pytest.approx(90.0)

    def test_overbooking_rate(self):
        stats = self.make()
        assert stats.overbooking_rate(85) == pytest.approx(0.1)
        assert stats.overbooking_rate(1000) == 0.0

    def test_buffer_utilization(self):
        stats = OccupancyStats([50, 100, 200])
        assert stats.buffer_utilization(100) == pytest.approx((50 + 100 + 100) / 300)

    def test_bumped_fraction(self):
        stats = OccupancyStats([50, 150])
        assert stats.bumped_fraction(100) == pytest.approx(50 / 200)

    def test_histogram_total(self):
        counts, edges = self.make().histogram(bins=5)
        assert counts.sum() == 10
        assert len(edges) == 6

    def test_cdf_monotone(self):
        x, fractions = self.make().cdf()
        assert np.all(np.diff(fractions) >= 0)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_at_points(self):
        _, fractions = self.make().cdf([45, 1000])
        assert fractions[0] == pytest.approx(0.5)
        assert fractions[1] == pytest.approx(1.0)

    def test_scaled(self):
        scaled = self.make().scaled(2.0)
        assert scaled.max == 180
        assert scaled.mean == pytest.approx(90.0)

    def test_scaled_invalid_factor(self):
        with pytest.raises(ValueError):
            self.make().scaled(0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            OccupancyStats([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OccupancyStats([1, -2])

    def test_summary_keys(self):
        summary = self.make().summary()
        assert set(summary) == {"count", "max", "mean", "p90", "p99"}


class TestUtilizationTimeline:
    def test_values(self):
        timeline = utilization_timeline([10, 50, 200], 100)
        assert list(timeline) == [0.1, 0.5, 1.0]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            utilization_timeline([1], 0)


@settings(max_examples=30, deadline=None)
@given(
    occupancies=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100),
    y=st.floats(min_value=0.0, max_value=1.0),
)
def test_property_quantile_bounds_overbooking_rate(occupancies, y):
    """Capacity at the y-quantile never yields an overbooking rate above y."""
    stats = OccupancyStats(occupancies)
    quantile = stats.quantile_for_overbooking(y)
    if quantile > 0:
        # Finite samples quantize the achievable rate: allow one tile of slack.
        assert stats.overbooking_rate(quantile) <= y + 1.0 / stats.count + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    occupancies=st.lists(st.integers(min_value=0, max_value=5_000), min_size=1, max_size=60),
    factor=st.floats(min_value=0.1, max_value=10.0),
)
def test_property_scaling_commutes_with_quantiles(occupancies, factor):
    """Scaling the distribution scales its quantiles by the same factor."""
    stats = OccupancyStats(occupancies)
    scaled = stats.scaled(factor)
    assert scaled.percentile(90) == pytest.approx(stats.percentile(90) * factor, rel=1e-9)
