"""Cross-checks of the array-backed (SoA) ``Tiling`` against per-tile views.

The tiling layer stores per-tile occupancies as one NumPy array and derives
``Tile`` objects lazily.  These tests assert, for all three structure classes
the evaluation uses (FEM band, power-law graph, road network) and all three
tiling families (row-block, uniform 2-D grid, position-space), that every bulk
statistic equals the same statistic recomputed tile-by-tile from the ``Tile``
views — and that the bulk path never constructs a per-tile Python object.
"""

import numpy as np
import pytest

import repro.tiling.base as tiling_base
from repro.tensor.generators import (
    banded_matrix,
    power_law_matrix,
    road_network_matrix,
)
from repro.tiling.coordinate import row_block_tiling, uniform_shape_tiling
from repro.tiling.position import position_space_tiling

CAPACITIES = (1, 37, 256, 4096)


def _structure_matrices():
    """One small matrix per structure class of the evaluation suite."""
    return [
        banded_matrix(200, bandwidth=6, band_fill=0.8, off_band_nnz=200, rng=1,
                      name="fem-band"),
        power_law_matrix(300, 3000, alpha=1.6, rng=2, name="power-law"),
        road_network_matrix(250, num_clusters=4, cluster_size=20,
                            cluster_fill=0.3, rng=3, name="road"),
    ]


def _tilings(matrix):
    return [
        row_block_tiling(matrix, 17),
        uniform_shape_tiling(matrix, 32, 48),
        position_space_tiling(matrix, 97, other_operand_nnz=matrix.nnz),
    ]


def _all_tilings():
    return [(m.name, t) for m in _structure_matrices() for t in _tilings(m)]


@pytest.fixture(scope="module", params=range(9))
def named_tiling(request):
    return _all_tilings()[request.param]


class TestArrayVsTileViews:
    def test_occupancies_match_views(self, named_tiling):
        _, tiling = named_tiling
        per_tile = [tile.occupancy for tile in tiling]
        assert per_tile == list(tiling.occupancies())

    def test_ranges_match_bound_arrays(self, named_tiling):
        _, tiling = named_tiling
        row_starts, row_stops, col_starts, col_stops = tiling.bound_arrays()
        for i, tile in enumerate(tiling):
            assert tile.index == i
            assert (tile.row_range.start, tile.row_range.stop) == \
                (row_starts[i], row_stops[i])
            assert (tile.col_range.start, tile.col_range.stop) == \
                (col_starts[i], col_stops[i])

    def test_partition_invariant(self, named_tiling):
        _, tiling = named_tiling
        tiling.validate()
        assert tiling.total_occupancy == tiling.matrix.nnz
        assert tiling.max_occupancy == max(t.occupancy for t in tiling)

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_overbooking_rate_matches_views(self, named_tiling, capacity):
        _, tiling = named_tiling
        per_tile = sum(t.overbooks(capacity) for t in tiling) / len(tiling)
        assert tiling.overbooking_rate(capacity) == pytest.approx(per_tile)
        assert len(tiling.overbooked_tiles(capacity)) == \
            sum(t.overbooks(capacity) for t in tiling)

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_bumped_elements_matches_views(self, named_tiling, capacity):
        _, tiling = named_tiling
        assert tiling.bumped_elements(capacity) == \
            sum(t.bumped(capacity) for t in tiling)

    @pytest.mark.parametrize("capacity", CAPACITIES)
    def test_buffer_utilization_matches_views(self, named_tiling, capacity):
        _, tiling = named_tiling
        per_tile = np.mean([min(t.occupancy, capacity) for t in tiling]) / capacity
        assert tiling.buffer_utilization(capacity) == pytest.approx(per_tile)

    def test_indexing_and_negative_indexing(self, named_tiling):
        _, tiling = named_tiling
        assert tiling[0].index == 0
        assert tiling[-1].index == len(tiling) - 1
        assert tiling[len(tiling) - 1].occupancy == tiling[-1].occupancy
        with pytest.raises(IndexError):
            tiling[len(tiling)]

    def test_tiles_property_materializes_views(self, named_tiling):
        _, tiling = named_tiling
        tiles = tiling.tiles
        assert len(tiles) == tiling.num_tiles
        assert all(isinstance(t, tiling_base.Tile) for t in tiles)


class TestBulkPathBuildsNoTiles:
    """The evaluation pipeline's statistics must not create Tile objects."""

    def test_bulk_statistics_never_construct_tiles(self, monkeypatch):
        matrix = power_law_matrix(300, 3000, alpha=1.6, rng=2, name="power-law")

        def _boom(*args, **kwargs):
            raise AssertionError("bulk path constructed a per-tile object")

        monkeypatch.setattr(tiling_base, "Tile", _boom)
        for tiling in _tilings(matrix):
            tiling.validate()
            tiling.occupancies()
            tiling.summary()
            for capacity in CAPACITIES:
                tiling.overbooking_rate(capacity)
                tiling.bumped_elements(capacity)
                tiling.buffer_utilization(capacity)

    def test_engine_pipeline_never_constructs_tiles(self, monkeypatch):
        from repro.experiments import runner as runner_mod
        from repro.experiments.runner import ExperimentContext

        def _boom(*args, **kwargs):
            raise AssertionError("evaluation pipeline constructed a Tile")

        monkeypatch.setattr(tiling_base, "Tile", _boom)
        context = ExperimentContext.quick()
        # Defeat the process-wide memo layers so the engine really evaluates.
        runner_mod._REPORT_MEMO.clear()
        name = context.workload_names[0]
        context.matrix(name).memo.clear()
        reports = context.reports(name)
        assert len(reports) == 3
