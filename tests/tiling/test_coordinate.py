"""Tests for coordinate-space tiling (uniform shape, dense, prescient)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.generators import power_law_matrix, uniform_random_matrix
from repro.tiling.coordinate import (
    dense_row_block_rows,
    prescient_row_block_rows,
    prescient_uniform_tile_dims,
    row_block_tiling,
    uniform_shape_tiling,
)


class TestUniformShapeTiling:
    def test_partition_covers_all_nonzeros(self, powerlaw):
        tiling = uniform_shape_tiling(powerlaw, 64, 64)
        tiling.validate()

    def test_grid_dimensions(self, tiny_dense_matrix):
        tiling = uniform_shape_tiling(tiny_dense_matrix, 3, 3)
        assert tiling.num_tiles == 4  # 2x2 grid with clipped boundary tiles

    def test_boundary_tiles_clipped(self, tiny_dense_matrix):
        tiling = uniform_shape_tiling(tiny_dense_matrix, 3, 3)
        last = tiling[-1]
        assert last.num_rows == 1 and last.num_cols == 1

    def test_zero_tax_by_default(self, tiny_dense_matrix):
        assert uniform_shape_tiling(tiny_dense_matrix, 2, 2).tax.total_elements == 0


class TestRowBlockTiling:
    def test_partition(self, banded):
        tiling = row_block_tiling(banded, 13)
        tiling.validate()
        assert tiling.num_tiles == -(-banded.num_rows // 13)

    def test_col_range_spans_matrix(self, banded):
        tiling = row_block_tiling(banded, 13)
        assert all(len(t.col_range) == banded.num_cols for t in tiling)

    def test_single_block(self, banded):
        tiling = row_block_tiling(banded, banded.num_rows)
        assert tiling.num_tiles == 1
        assert tiling[0].occupancy == banded.nnz


class TestDenseRowBlockRows:
    def test_basic(self):
        assert dense_row_block_rows(1000, 100) == 10

    def test_at_least_one_row(self):
        assert dense_row_block_rows(10, 100) == 1

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            dense_row_block_rows(0, 100)


class TestPrescientRowBlock:
    def test_max_occupancy_fits(self, powerlaw):
        capacity = 400
        block, _ = prescient_row_block_rows(powerlaw, capacity)
        assert powerlaw.row_block_occupancies(block).max() <= capacity

    def test_is_maximal(self, powerlaw):
        capacity = 400
        block, _ = prescient_row_block_rows(powerlaw, capacity)
        if block < powerlaw.num_rows:
            assert powerlaw.row_block_occupancies(block + 1).max() > capacity

    def test_whole_matrix_when_it_fits(self, powerlaw):
        block, _ = prescient_row_block_rows(powerlaw, powerlaw.nnz + 1)
        assert block == powerlaw.num_rows

    def test_falls_back_to_single_row(self):
        matrix = uniform_random_matrix(20, 200, 2000, rng=0)
        block, _ = prescient_row_block_rows(matrix, 5)
        assert block == 1

    def test_tax_records_traversals(self, powerlaw):
        _, tax = prescient_row_block_rows(powerlaw, 500)
        assert tax.candidate_sizes >= 1
        assert tax.preprocessing_elements == tax.candidate_sizes * powerlaw.nnz


class TestPrescient2D:
    def test_max_occupancy_fits(self, powerlaw):
        (rows, cols), tax = prescient_uniform_tile_dims(powerlaw, 200, max_candidates=24)
        assert powerlaw.max_tile_occupancy(rows, cols) <= 200
        assert 1 <= tax.candidate_sizes <= 24

    def test_aspect_ratio_respected(self, powerlaw):
        (rows, cols), _ = prescient_uniform_tile_dims(powerlaw, 200, aspect=4.0,
                                                      max_candidates=16)
        assert rows >= cols

    def test_invalid_aspect_raises(self, powerlaw):
        with pytest.raises(ValueError):
            prescient_uniform_tile_dims(powerlaw, 100, aspect=0.0)


@settings(max_examples=20, deadline=None)
@given(
    capacity=st.integers(min_value=10, max_value=3000),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_prescient_never_overbooks(capacity, seed):
    """The prescient tile size never produces a tile above the capacity."""
    matrix = power_law_matrix(150, 1500, alpha=1.5, rng=seed)
    block, _ = prescient_row_block_rows(matrix, capacity)
    occupancies = matrix.row_block_occupancies(block)
    single_row_max = matrix.row_block_occupancies(1).max()
    if single_row_max <= capacity:
        assert occupancies.max() <= capacity
    else:
        # Degenerate case: even one row exceeds the buffer; prescient tiling
        # falls back to single-row tiles.
        assert block == 1


@settings(max_examples=20, deadline=None)
@given(
    block=st.integers(min_value=1, max_value=200),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_row_block_tiling_partitions(block, seed):
    """Row-block tilings are partitions for any block height."""
    matrix = uniform_random_matrix(97, 61, 900, rng=seed)
    tiling = row_block_tiling(matrix, block)
    tiling.validate()
    assert sum(len(t.row_range) for t in tiling) == matrix.num_rows
