"""Tests for Tile / Tiling / TilingTax abstractions."""

import pytest

from repro.tensor.coords import Range
from repro.tiling.base import Tile, TilingTax
from repro.tiling.coordinate import row_block_tiling, uniform_shape_tiling


class TestTile:
    def make(self, occupancy=3):
        return Tile(index=0, row_range=Range(0, 4), col_range=Range(0, 8),
                    occupancy=occupancy)

    def test_shape_and_size(self):
        tile = self.make()
        assert tile.shape == (4, 8)
        assert tile.size == 32

    def test_overbooks(self):
        assert self.make(occupancy=10).overbooks(8)
        assert not self.make(occupancy=8).overbooks(8)

    def test_bumped(self):
        assert self.make(occupancy=10).bumped(8) == 2
        assert self.make(occupancy=5).bumped(8) == 0

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            Tile(index=0, row_range=Range(0, 1), col_range=Range(0, 1), occupancy=-1)


class TestTilingTax:
    def test_totals(self):
        tax = TilingTax(preprocessing_elements=100, candidate_sizes=3,
                        runtime_matching_elements=50)
        assert tax.total_elements == 150

    def test_combined(self):
        a = TilingTax(preprocessing_elements=10)
        b = TilingTax(runtime_matching_elements=5, candidate_sizes=1)
        combined = a.combined(b)
        assert combined.preprocessing_elements == 10
        assert combined.runtime_matching_elements == 5
        assert combined.candidate_sizes == 1

    def test_default_is_free(self):
        assert TilingTax().total_elements == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TilingTax(preprocessing_elements=-1)


class TestTiling:
    def test_occupancies_and_totals(self, tiny_dense_matrix):
        tiling = uniform_shape_tiling(tiny_dense_matrix, 2, 2)
        assert list(tiling.occupancies()) == [1, 1, 2, 1]
        assert tiling.total_occupancy == tiny_dense_matrix.nnz
        assert tiling.max_occupancy == 2

    def test_validate_passes_for_partition(self, banded):
        tiling = row_block_tiling(banded, 16)
        tiling.validate()

    def test_overbooked_tiles(self, tiny_dense_matrix):
        tiling = uniform_shape_tiling(tiny_dense_matrix, 2, 2)
        assert len(tiling.overbooked_tiles(1)) == 1
        assert tiling.overbooking_rate(1) == pytest.approx(0.25)
        assert tiling.overbooking_rate(2) == 0.0

    def test_bumped_elements(self, tiny_dense_matrix):
        tiling = uniform_shape_tiling(tiny_dense_matrix, 2, 2)
        assert tiling.bumped_elements(1) == 1

    def test_buffer_utilization_bounds(self, banded):
        tiling = row_block_tiling(banded, 16)
        for capacity in (1, 100, 10_000):
            assert 0.0 <= tiling.buffer_utilization(capacity) <= 1.0

    def test_buffer_utilization_full_when_capacity_tiny(self, banded):
        tiling = row_block_tiling(banded, 50)
        assert tiling.buffer_utilization(1) == pytest.approx(1.0)

    def test_iteration_and_indexing(self, tiny_dense_matrix):
        tiling = uniform_shape_tiling(tiny_dense_matrix, 2, 2)
        assert len(list(tiling)) == len(tiling) == 4
        assert tiling[0].index == 0

    def test_summary(self, tiny_dense_matrix):
        summary = uniform_shape_tiling(tiny_dense_matrix, 2, 2).summary()
        assert summary["num_tiles"] == 4
        assert summary["total_occupancy"] == 5
