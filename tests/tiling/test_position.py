"""Tests for position-space (uniform occupancy) tiling."""

import pytest

from repro.tiling.position import position_space_tiling


class TestPositionSpaceTiling:
    def test_uniform_occupancy(self, powerlaw):
        capacity = 100
        tiling = position_space_tiling(powerlaw, capacity)
        occupancies = tiling.occupancies()
        assert all(occupancies[:-1] == capacity)
        assert 0 < occupancies[-1] <= capacity

    def test_partition(self, powerlaw):
        tiling = position_space_tiling(powerlaw, 128)
        tiling.validate()

    def test_number_of_tiles(self, powerlaw):
        capacity = 250
        tiling = position_space_tiling(powerlaw, capacity)
        assert tiling.num_tiles == -(-powerlaw.nnz // capacity)

    def test_perfect_buffer_utilization(self, powerlaw):
        tiling = position_space_tiling(powerlaw, 100)
        assert tiling.buffer_utilization(100) > 0.95

    def test_never_overbooks(self, powerlaw):
        tiling = position_space_tiling(powerlaw, 77)
        assert tiling.overbooking_rate(77) == 0.0

    def test_bounding_boxes_cover_nonzeros(self, tiny_dense_matrix):
        tiling = position_space_tiling(tiny_dense_matrix, 2)
        for tile in tiling:
            assert tile.num_rows >= 1 and tile.num_cols >= 1

    def test_operand_matching_tax(self, powerlaw):
        other_nnz = 12_345
        tiling = position_space_tiling(powerlaw, 100, other_operand_nnz=other_nnz)
        assert tiling.tax.runtime_matching_elements == other_nnz * tiling.num_tiles

    def test_no_tax_without_other_operand(self, powerlaw):
        tiling = position_space_tiling(powerlaw, 100)
        assert tiling.tax.total_elements == 0

    def test_invalid_capacity_raises(self, powerlaw):
        with pytest.raises(ValueError):
            position_space_tiling(powerlaw, 0)

    def test_capacity_larger_than_nnz(self, tiny_dense_matrix):
        tiling = position_space_tiling(tiny_dense_matrix, 1000)
        assert tiling.num_tiles == 1
        assert tiling[0].occupancy == tiny_dense_matrix.nnz
