"""Smoke tests: every example script must run end to end.

Each example is executed in a subprocess (they manage ``sys.path``
themselves) under its quick/small configuration where one exists, so a CLI or
framework change that breaks an example fails the suite instead of rotting
silently.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent.parent / "examples"

#: script name -> (argv, a string the output must contain)
EXAMPLES = {
    "quickstart.py": (["--suite", "quick"], "ExTensor-OB"),
    "tailors_buffer_trace.py": ([], "parent fetches"),
    "swiftiles_tile_sizing.py": ([], "T_target"),
    "accelerator_design_space.py": (["--quick", "--workers", "1"], "GLB scale"),
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLES), (
        "examples/ changed; update EXAMPLES so new scripts stay smoke-tested")


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script):
    argv, needle = EXAMPLES[script]
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *argv],
        capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr
    assert needle in completed.stdout, (
        f"{script} output missing {needle!r}:\n{completed.stdout[-2000:]}")
