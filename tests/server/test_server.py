"""Evaluation daemon integration: coalescing, byte-identity, shutdown.

The server's contract is that it is *transparent*: any artifact fetched
through it is byte-identical to the one the serial CLI path writes, no
matter how many clients were coalesced into the pass that computed it —
and stopping the daemon never strands a ticket, a lease, or a
shared-memory segment (the autouse ``no_leaked_shared_memory`` check
covers the last).
"""

import http.client
import json
import threading

import pytest

from repro.cli import main
from repro.experiments.runner import clear_process_caches
from repro.experiments.store import LEASES_DIR, ReportStore
from repro.experiments.sweep import plan_grid
from repro.server import (
    EvaluationService,
    ServerClient,
    ServiceClosed,
    ServiceError,
    artifact_bytes,
    create_server,
    serve,
)
from repro.tensor.suite import small_suite


def _requests(y_values=(0.05,)):
    return list(plan_grid(small_suite(), y_values=list(y_values)).requests)


@pytest.fixture()
def live_server(tmp_path):
    """A daemon on a free port over a fresh store; drained at teardown."""
    clear_process_caches()
    store = ReportStore(tmp_path / "store")
    server = create_server(port=0, store=store, batch_window=0.05)
    thread = threading.Thread(target=serve, args=(server,))
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServerClient(host, port), store
    finally:
        if thread.is_alive():
            try:
                ServerClient(host, port).shutdown()
            except Exception:
                server.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive(), "server failed to drain and stop"


class TestService:
    """The coalescing loop, driven deterministically (no timing windows)."""

    def test_concurrent_tickets_coalesce_into_one_pass(self):
        clear_process_caches()
        service = EvaluationService(auto_start=False)
        first = service.submit(_requests())
        second = service.submit(_requests())
        assert service.step() == 2

        counters = service.counters
        assert counters.passes == 1
        assert counters.tickets == 2
        assert counters.requests == 2 * len(_requests())
        assert counters.coalesced == len(_requests())  # second ticket free
        assert counters.computed == len(_requests())

        for ticket in (first, second):
            events = list(ticket.events())
            cells = [event for event in events if event["event"] == "cell"]
            assert len(cells) == len(_requests())
            assert {cell["source"] for cell in cells} == {"computed"}
            assert events[-1]["event"] == "done"
        service.close()

    def test_cells_report_their_serving_tier(self, tmp_path):
        """The same grid is served ``computed`` → ``store`` → ``memo`` as it
        climbs the warm tiers."""
        def sources(ticket):
            return {event["source"] for event in ticket.events()
                    if event["event"] == "cell"}

        clear_process_caches()
        store = ReportStore(tmp_path / "store")
        service = EvaluationService(store=store, auto_start=False)
        cold = service.submit(_requests())
        service.step()
        assert sources(cold) == {"computed"}
        service.close()

        clear_process_caches()  # simulate a fresh process over the store
        service = EvaluationService(store=store, auto_start=False)
        warm_disk = service.submit(_requests())
        service.step()
        assert sources(warm_disk) == {"store"}

        warm_memo = service.submit(_requests())
        service.step()
        assert sources(warm_memo) == {"memo"}
        assert service.counters.store_hits == len(_requests())
        assert service.counters.memo_hits == len(_requests())
        service.close()

    def test_close_drains_queued_tickets(self, tmp_path):
        """Graceful shutdown: a ticket queued (in flight) at close() time is
        still evaluated to completion, not dropped."""
        clear_process_caches()
        service = EvaluationService(
            store=ReportStore(tmp_path / "store"), auto_start=False)
        ticket = service.submit(_requests())
        service.close(drain=True)  # no loop thread: drains inline
        done = ticket.wait()
        assert done["event"] == "done"
        assert done["schedule"]["computed"] == len(_requests())
        with pytest.raises(ServiceClosed):
            service.submit(_requests())

    def test_close_without_drain_fails_tickets_fast(self):
        clear_process_caches()
        service = EvaluationService(auto_start=False)
        ticket = service.submit(_requests())
        service.close(drain=False)
        with pytest.raises(ServiceError, match="shut down"):
            ticket.wait()

    def test_pass_failure_fails_every_coalesced_ticket(self):
        clear_process_caches()
        service = EvaluationService(auto_start=False)
        bad = _requests()[0]
        bad = type(bad)(suite_token=("bogus",), architecture=bad.architecture,
                        overbooking_target=0.1, workload=bad.workload)
        first = service.submit([bad])
        second = service.submit([bad])
        service.step()
        for ticket in (first, second):
            with pytest.raises(ServiceError):
                ticket.wait()
        service.close()


class TestHTTPEndpoints:
    def test_health_and_stats_counters(self, live_server):
        client, _store = live_server
        assert client.health() == {"status": "ok"}

        cold = client.sweep(suite="quick", y=[0.05])
        hot = client.sweep(suite="quick", y=[0.05])
        assert cold.cell_sources() == {"computed": 3}
        assert hot.cell_sources() == {"memo": 3}

        stats = client.stats()
        assert stats["passes"] >= 2
        assert stats["computed"] == 3
        assert stats["memo_hits"] == 3
        assert stats["store_session"]["writes"] == 3
        assert 0.0 < stats["warm_hit_rate"] <= 1.0

    def test_store_tier_serves_a_cold_process(self, tmp_path):
        """A second daemon over the same store serves the first one's work
        from disk — the fleet-wide warm path."""
        store_dir = tmp_path / "store"
        clear_process_caches()
        server = create_server(port=0, store=ReportStore(store_dir),
                               batch_window=0.0)
        thread = threading.Thread(target=serve, args=(server,))
        thread.start()
        client = ServerClient(*server.server_address[:2])
        try:
            assert client.sweep(suite="quick",
                                y=[0.05]).cell_sources() == {"computed": 3}
        finally:
            client.shutdown()
            thread.join(timeout=60)

        clear_process_caches()  # "new process": memo gone, store remains
        server = create_server(port=0, store=ReportStore(store_dir),
                               batch_window=0.0)
        thread = threading.Thread(target=serve, args=(server,))
        thread.start()
        client = ServerClient(*server.server_address[:2])
        try:
            assert client.sweep(suite="quick",
                                y=[0.05]).cell_sources() == {"store": 3}
        finally:
            client.shutdown()
            thread.join(timeout=60)

    def test_unknown_path_and_bad_body(self, live_server):
        client, _store = live_server
        connection = http.client.HTTPConnection(client.host, client.port)
        connection.request("POST", "/sweep", body=b"{not json",
                           headers={"Connection": "close"})
        response = connection.getresponse()
        assert response.status == 400
        assert b"not JSON" in response.read()
        connection.close()

        with pytest.raises(Exception, match="404|unknown"):
            client._json("GET", "/nonesuch")

    def test_unknown_experiment_is_a_request_error(self, live_server):
        client, _store = live_server
        with pytest.raises(Exception, match="nonesuch|unknown"):
            client.run(["nonesuch"])


class TestByteIdentity:
    def test_concurrent_overlapping_clients_match_serial_cli(
            self, live_server, tmp_path, capsys):
        """The golden test: N concurrent clients with overlapping grids all
        receive artifacts byte-identical to a serial ``python -m repro
        sweep`` of the same grid."""
        client, _store = live_server
        grids = [
            {"suite": "quick", "y": [0.05, 0.10]},
            {"suite": "quick", "y": [0.05, 0.10]},   # identical (coalesces)
            {"suite": "quick", "y": [0.10, 0.22]},   # overlaps at y=0.10
        ]
        outcomes = [None] * len(grids)

        def drive(index):
            outcomes[index] = client.sweep(**grids[index])

        threads = [threading.Thread(target=drive, args=(index,))
                   for index in range(len(grids))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for index, grid in enumerate(grids):
            out_dir = tmp_path / f"cli-{index}"
            assert main(["sweep", "--suite", "quick",
                         "--y", ",".join(str(y) for y in grid["y"]),
                         "--output-dir", str(out_dir)]) == 0
            cli_bytes = (out_dir / "sweep.json").read_bytes()
            assert artifact_bytes(outcomes[index].artifact) == cli_bytes, (
                f"server artifact {index} diverged from the CLI bytes")

    def test_run_endpoint_matches_cli_artifact_payload(
            self, live_server, tmp_path, capsys):
        client, _store = live_server
        outcome = client.run(["table2"], suite="quick")
        artifact = [event for event in outcome.events
                    if event["event"] == "artifact"][0]["payload"]

        out_dir = tmp_path / "cli-run"
        assert main(["run", "table2", "--suite", "quick", "--quiet",
                     "--output-dir", str(out_dir)]) == 0
        cli_payload = json.loads((out_dir / "table2.json").read_text())
        # The CLI payload adds wall-clock ``seconds``; everything
        # identity-bearing must match exactly.
        assert artifact["result"] == cli_payload["result"]
        assert artifact["experiment"] == cli_payload["experiment"]
        assert artifact["suite"] == cli_payload["suite"]


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_request(self, tmp_path):
        """A /shutdown racing an in-flight /sweep: the sweep still streams
        to completion (drained, not dropped), and nothing is orphaned —
        no lease files in the store, no shm segments (autouse check)."""
        clear_process_caches()
        store = ReportStore(tmp_path / "store")
        server = create_server(port=0, store=store, batch_window=0.3)
        thread = threading.Thread(target=serve, args=(server,))
        thread.start()
        host, port = server.server_address[:2]

        # Raw connection so the stream can be read event by event.
        connection = http.client.HTTPConnection(host, port, timeout=120)
        connection.request(
            "POST", "/sweep",
            body=json.dumps({"suite": "quick", "y": [0.05]}).encode(),
            headers={"Content-Type": "application/json",
                     "Connection": "close"})
        response = connection.getresponse()
        first = json.loads(response.readline())
        assert first["event"] == "plan"

        # The ticket now sits in the 0.3s coalescing window; shut down
        # while it is unambiguously in flight.
        ServerClient(host, port).shutdown()

        events = [json.loads(line) for line in response if line.strip()]
        assert events[-1]["event"] == "result"
        assert events[-1]["schedule"]["computed"] == 3
        connection.close()

        thread.join(timeout=60)
        assert not thread.is_alive()

        leases = store.root / LEASES_DIR
        assert not leases.exists() or not any(leases.iterdir()), (
            "graceful shutdown left orphaned lease files")

        # And the daemon really is down: new requests are refused.
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection(host, port, timeout=5)
            probe.request("GET", "/health")
            probe.getresponse()
