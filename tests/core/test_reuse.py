"""Tests for trace-driven and analytic reuse accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reuse import (
    analytic_buffet_fetches,
    analytic_cache_scan_fetches,
    analytic_tailors_fetches,
    simulate_buffet_tile,
    simulate_cache_tile,
    simulate_tailors_tile,
)


class TestAnalyticForms:
    def test_fitting_tile_fetched_once(self):
        assert analytic_buffet_fetches(100, 200, 5) == 100
        assert analytic_tailors_fetches(100, 200, 10, 5) == 100
        assert analytic_cache_scan_fetches(100, 200, 5) == 100

    def test_buffet_refetches_everything(self):
        assert analytic_buffet_fetches(300, 100, 4) == 1200

    def test_tailors_refetches_only_bumped(self):
        # resident = 100 - 20 = 80, bumped = 220.
        assert analytic_tailors_fetches(300, 100, 20, 4) == 80 + 220 * 4

    def test_tailors_never_worse_than_buffet(self):
        for occupancy in (50, 150, 1000):
            for passes in (1, 3, 8):
                assert analytic_tailors_fetches(occupancy, 100, 10, passes) <= \
                    analytic_buffet_fetches(occupancy, 100, passes)

    def test_cache_scan_equals_buffet(self):
        assert analytic_cache_scan_fetches(500, 100, 3) == analytic_buffet_fetches(500, 100, 3)


class TestTraceSimulations:
    def test_buffet_matches_analytic_when_fitting(self):
        report = simulate_buffet_tile(50, 100, num_passes=4)
        assert report.parent_fetches == analytic_buffet_fetches(50, 100, 4)

    def test_buffet_matches_analytic_when_overbooked(self):
        report = simulate_buffet_tile(250, 64, num_passes=3)
        assert report.parent_fetches == analytic_buffet_fetches(250, 64, 3)

    def test_tailors_matches_analytic(self):
        report = simulate_tailors_tile(250, 64, 16, num_passes=3)
        assert report.parent_fetches == analytic_tailors_fetches(250, 64, 16, 3)

    def test_cache_matches_analytic_scan(self):
        report = simulate_cache_tile(250, 64, num_passes=3)
        assert report.parent_fetches == analytic_cache_scan_fetches(250, 64, 3)

    def test_total_accesses(self):
        report = simulate_tailors_tile(40, 16, 4, num_passes=2)
        assert report.total_accesses == 80

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simulate_buffet_tile(0, 10)
        with pytest.raises(ValueError):
            simulate_tailors_tile(10, 0)


class TestReuseReport:
    def test_not_overbooked_full_reuse(self):
        report = simulate_tailors_tile(50, 100, 10, num_passes=5)
        assert not report.overbooked
        assert report.bumped_fraction == 0.0
        assert report.reuse_fraction == pytest.approx(1.0)
        assert report.streaming_fetches == 0

    def test_overbooked_reuse_below_one(self):
        report = simulate_tailors_tile(300, 100, 20, num_passes=5)
        assert report.overbooked
        assert 0.0 < report.reuse_fraction < 1.0
        assert report.bumped_fraction == pytest.approx(200 / 300)

    def test_buffet_overbooked_zero_reuse(self):
        report = simulate_buffet_tile(300, 100, num_passes=5)
        assert report.reuse_fraction == pytest.approx(0.0)

    def test_reuse_decreases_with_bumped_fraction(self):
        capacities = (900, 600, 300, 100)
        reuse = [simulate_tailors_tile(1000, c, c // 8, 4).reuse_fraction
                 for c in capacities]
        assert all(a >= b for a, b in zip(reuse, reuse[1:]))


@settings(max_examples=20, deadline=None)
@given(
    occupancy=st.integers(min_value=1, max_value=400),
    capacity=st.integers(min_value=2, max_value=128),
    passes=st.integers(min_value=1, max_value=4),
)
def test_property_trace_matches_analytic(occupancy, capacity, passes):
    """The trace-driven Tailors simulation agrees with the closed form."""
    fifo = max(1, capacity // 4)
    report = simulate_tailors_tile(occupancy, capacity, fifo, passes)
    assert report.parent_fetches == analytic_tailors_fetches(occupancy, capacity, fifo, passes)
    assert report.total_accesses == occupancy * passes


@settings(max_examples=20, deadline=None)
@given(
    occupancy=st.integers(min_value=1, max_value=400),
    capacity=st.integers(min_value=2, max_value=128),
    passes=st.integers(min_value=1, max_value=4),
)
def test_property_tailors_between_ideal_and_buffet(occupancy, capacity, passes):
    """Tailors fetches lie between the ideal (fetch once) and the buffet."""
    fifo = max(1, capacity // 4)
    tailors = analytic_tailors_fetches(occupancy, capacity, fifo, passes)
    buffet = analytic_buffet_fetches(occupancy, capacity, passes)
    assert occupancy <= tailors <= buffet
