"""Tests for the naive / prescient / overbooking tilers."""

import pytest

from repro.core.overbooking import NaiveTiler, OverbookingTiler, PrescientTiler
from repro.core.swiftiles import SwiftilesConfig


CAPACITY = 400


class TestNaiveTiler:
    def test_dense_worst_case_block(self, uniform):
        result = NaiveTiler().tile(uniform, CAPACITY)
        assert result.block_rows == max(1, CAPACITY // uniform.num_cols)

    def test_never_overbooks_dense_assumption(self, uniform):
        result = NaiveTiler().tile(uniform, CAPACITY)
        # Under the dense worst case the tile *size* never exceeds capacity
        # (unless even a single row is wider than the buffer).
        if uniform.num_cols <= CAPACITY:
            assert result.tile_size <= CAPACITY

    def test_zero_tax(self, powerlaw):
        assert NaiveTiler().tile(powerlaw, CAPACITY).tax.total_elements == 0

    def test_partition(self, powerlaw):
        NaiveTiler().tile(powerlaw, CAPACITY).tiling.validate()

    def test_low_utilization_on_sparse_data(self, powerlaw):
        result = NaiveTiler().tile(powerlaw, CAPACITY)
        assert result.buffer_utilization(CAPACITY) < 0.2


class TestPrescientTiler:
    def test_never_overbooks(self, powerlaw):
        result = PrescientTiler().tile(powerlaw, CAPACITY)
        assert result.overbooking_rate(CAPACITY) == 0.0

    def test_larger_blocks_than_naive(self, powerlaw):
        naive = NaiveTiler().tile(powerlaw, CAPACITY)
        prescient = PrescientTiler().tile(powerlaw, CAPACITY)
        assert prescient.block_rows >= naive.block_rows

    def test_higher_utilization_than_naive(self, powerlaw):
        naive = NaiveTiler().tile(powerlaw, CAPACITY)
        prescient = PrescientTiler().tile(powerlaw, CAPACITY)
        assert prescient.buffer_utilization(CAPACITY) > naive.buffer_utilization(CAPACITY)

    def test_tax_is_positive(self, powerlaw):
        result = PrescientTiler().tile(powerlaw, CAPACITY)
        assert result.tax.preprocessing_elements > 0

    def test_partition(self, banded):
        PrescientTiler().tile(banded, CAPACITY).tiling.validate()


class TestOverbookingTiler:
    def test_partition(self, powerlaw):
        OverbookingTiler(rng=0).tile(powerlaw, CAPACITY).tiling.validate()

    def test_carries_swiftiles_estimate(self, powerlaw):
        result = OverbookingTiler(rng=0).tile(powerlaw, CAPACITY)
        assert result.swiftiles is not None
        assert result.swiftiles.buffer_capacity == CAPACITY

    def test_blocks_at_least_as_large_as_prescient_on_skewed_data(self, powerlaw):
        prescient = PrescientTiler().tile(powerlaw, CAPACITY)
        overbooked = OverbookingTiler(
            SwiftilesConfig(overbooking_target=0.10, sample_all_tiles=True)).tile(
            powerlaw, CAPACITY)
        assert overbooked.block_rows >= prescient.block_rows

    def test_some_tiles_overbook_on_skewed_data(self, powerlaw):
        result = OverbookingTiler(
            SwiftilesConfig(overbooking_target=0.25, sample_all_tiles=True)).tile(
            powerlaw, CAPACITY)
        assert result.overbooking_rate(CAPACITY) > 0.0

    def test_tax_cheaper_than_prescient(self, powerlaw):
        prescient = PrescientTiler().tile(powerlaw, CAPACITY)
        overbooked = OverbookingTiler(rng=0).tile(powerlaw, CAPACITY)
        assert overbooked.tax.total_elements <= prescient.tax.total_elements

    def test_invalid_capacity(self, powerlaw):
        with pytest.raises(ValueError):
            OverbookingTiler(rng=0).tile(powerlaw, 0)

    def test_block_rows_never_exceed_matrix(self, uniform):
        result = OverbookingTiler(
            SwiftilesConfig(overbooking_target=0.9)).tile(uniform, 10 * uniform.nnz)
        assert result.block_rows <= uniform.num_rows
