"""Tests for the Tailors storage idiom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.base import BufferFullError, BufferStallError
from repro.buffers.buffet import Buffet
from repro.core.tailors import Tailors, TailorsConfig


class TestTailorsConfig:
    def test_resident_capacity(self):
        assert TailorsConfig(8, 2).resident_capacity == 6

    def test_fifo_must_be_smaller_than_capacity(self):
        with pytest.raises(ValueError):
            TailorsConfig(4, 4)

    def test_for_latency_sizing(self):
        config = TailorsConfig.for_latency(64, round_trip_latency=4, fill_bandwidth=2)
        assert config.fifo_region_size == 16
        assert config.capacity == 64

    def test_for_latency_clamped(self):
        config = TailorsConfig.for_latency(4, round_trip_latency=100)
        assert config.fifo_region_size == 3


class TestBuffetCompatibleMode:
    """While the tile fits, a Tailor must behave exactly like a buffet."""

    def test_fill_read_update(self):
        tailor = Tailors(TailorsConfig(4, 2))
        for index, value in enumerate("abcd"):
            tailor.fill(value)
            assert tailor.read(index) == value
        tailor.update(2, "C")
        assert tailor.read(2) == "C"
        assert not tailor.is_overbooked

    def test_same_behaviour_as_buffet_when_fitting(self):
        tailor = Tailors(TailorsConfig(8, 2))
        buffet = Buffet(8)
        for value in range(6):
            tailor.fill(value)
            buffet.fill(value)
        for index in range(6):
            assert tailor.read(index) == buffet.read(index)

    def test_fill_full_raises(self):
        tailor = Tailors(TailorsConfig(2, 1))
        tailor.fill(1)
        tailor.fill(2)
        with pytest.raises(BufferFullError):
            tailor.fill(3)

    def test_read_unfilled_stalls(self):
        tailor = Tailors(TailorsConfig(4, 2))
        tailor.fill("a")
        with pytest.raises(BufferStallError):
            tailor.read(1)

    def test_credits_track_fills(self):
        tailor = Tailors(TailorsConfig(4, 2))
        tailor.fill(1)
        assert tailor.credits.available == 3


class TestOverbookedMode:
    def make_full(self, capacity=4, fifo=2):
        tailor = Tailors(TailorsConfig(capacity, fifo))
        for index in range(capacity):
            tailor.fill(f"v{index}")
        return tailor

    def test_overwriting_fill_requires_full_buffer(self):
        tailor = Tailors(TailorsConfig(4, 2))
        tailor.fill("a")
        with pytest.raises(BufferFullError):
            tailor.overwriting_fill("x")

    def test_plain_fill_forbidden_while_overbooked(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e")
        with pytest.raises(BufferFullError):
            tailor.fill("z")

    def test_initial_owfill_clears_fifo_region(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e")
        assert tailor.is_overbooked
        contents = tailor.contents()
        assert contents[0] == "v0" and contents[1] == "v1"
        assert "v2" not in contents and "v3" not in contents

    def test_buffet_region_keeps_serving_reads(self):
        tailor = self.make_full(capacity=6, fifo=2)
        tailor.overwriting_fill("x", index=6)
        for index in range(4):
            assert tailor.read(index) == f"v{index}"

    def test_streamed_data_readable_by_tile_index(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e", index=4)
        tailor.overwriting_fill("f", index=5)
        assert tailor.read(4) == "e"
        assert tailor.read(5) == "f"

    def test_fifo_region_is_rolling(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e", index=4)
        tailor.overwriting_fill("f", index=5)
        tailor.overwriting_fill("g", index=6)  # overwrites e
        with pytest.raises(BufferStallError):
            tailor.read(4)
        assert tailor.read(6) == "g"

    def test_default_index_is_sequential(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e")
        assert tailor.read(4) == "e"

    def test_streamed_fill_counter(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e")
        tailor.overwriting_fill("f")
        assert tailor.streamed_fills == 2
        assert tailor.counters.overwriting_fills == 2

    def test_update_in_fifo_region(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e", index=4)
        tailor.update(4, "E")
        assert tailor.read(4) == "E"

    def test_shrink_ends_overbooked_episode(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e", index=4)
        tailor.shrink(4)
        assert not tailor.is_overbooked
        # The streamed element survives, re-based to index 0.
        assert tailor.read(0) == "e"

    def test_reset(self):
        tailor = self.make_full()
        tailor.overwriting_fill("e")
        tailor.reset()
        assert tailor.occupancy == 0
        assert not tailor.is_overbooked
        tailor.fill("fresh")
        assert tailor.read(0) == "fresh"

    def test_negative_read_index_rejected(self):
        tailor = self.make_full()
        with pytest.raises(IndexError):
            tailor.read(-1)


class TestFifoOffsetBookkeeping:
    def test_offset_zero_when_not_overbooked(self):
        tailor = Tailors(TailorsConfig(4, 2))
        tailor.fill("a")
        assert tailor.fifo_offset == 0

    def test_offset_tracks_least_recent_streamed_index(self):
        tailor = Tailors(TailorsConfig(4, 2))
        for value in "abcd":
            tailor.fill(value)
        tailor.overwriting_fill("e", index=4)
        assert tailor.fifo_offset == 2          # 4 - fifo_head(2)
        tailor.overwriting_fill("f", index=5)
        assert tailor.fifo_offset == 2          # e is still the oldest
        tailor.overwriting_fill("c", index=2)   # replaces e; f becomes oldest
        assert tailor.fifo_offset == 3
        tailor.overwriting_fill("d", index=3)   # replaces f; c becomes oldest
        assert tailor.fifo_offset == 0


@settings(max_examples=25, deadline=None)
@given(
    capacity=st.integers(min_value=2, max_value=32),
    extra=st.integers(min_value=0, max_value=40),
)
def test_property_tailors_matches_buffet_until_overbooked(capacity, extra):
    """Filling up to capacity and reading back behaves identically to a buffet."""
    fifo = max(1, capacity // 4)
    tailor = Tailors(TailorsConfig(capacity, fifo))
    buffet = Buffet(capacity)
    for value in range(capacity):
        tailor.fill(value)
        buffet.fill(value)
    for index in range(capacity):
        assert tailor.read(index) == buffet.read(index)
    # Streaming `extra` additional elements never disturbs the resident head.
    for index in range(capacity, capacity + extra):
        tailor.overwriting_fill(index, index=index)
        assert tailor.read(index) == index
    resident = capacity - fifo if extra else capacity
    for index in range(resident):
        assert tailor.read(index) == index
