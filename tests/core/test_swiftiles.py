"""Tests for the Swiftiles statistical tile-size selector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.swiftiles import Swiftiles, SwiftilesConfig
from repro.tensor.generators import power_law_matrix, uniform_random_matrix


class TestSwiftilesConfig:
    def test_num_samples(self):
        assert SwiftilesConfig(overbooking_target=0.10, samples_in_tail=10).num_samples == 100
        assert SwiftilesConfig(overbooking_target=0.25, samples_in_tail=10).num_samples == 40

    def test_num_samples_at_zero_target(self):
        config = SwiftilesConfig(overbooking_target=0.0, samples_in_tail=10)
        assert config.num_samples == 1000

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            SwiftilesConfig(overbooking_target=1.5)

    def test_invalid_samples_rejected(self):
        with pytest.raises(ValueError):
            SwiftilesConfig(samples_in_tail=0)


class TestInitialEstimate:
    def test_equation_two(self, uniform):
        capacity = 500
        estimate = Swiftiles.initial_estimate(uniform, capacity)
        assert estimate == pytest.approx(capacity / uniform.density)

    def test_uniform_tensor_hits_expected_occupancy(self, uniform):
        """For uniform sparsity the initial estimate targets ~buffer occupancy."""
        capacity = 300
        size = Swiftiles.initial_estimate(uniform, capacity)
        block_rows = max(1, round(size / uniform.num_cols))
        occupancies = uniform.row_block_occupancies(block_rows)
        assert abs(np.mean(occupancies) - capacity) / capacity < 0.25

    def test_scales_with_capacity(self, powerlaw):
        small = Swiftiles.initial_estimate(powerlaw, 100)
        large = Swiftiles.initial_estimate(powerlaw, 1000)
        assert large == pytest.approx(10 * small)

    def test_invalid_capacity(self, powerlaw):
        with pytest.raises(ValueError):
            Swiftiles.initial_estimate(powerlaw, 0)


class TestSampling:
    def test_full_sampling_returns_every_tile(self, powerlaw):
        estimator = Swiftiles(SwiftilesConfig(sample_all_tiles=True))
        size = float(16 * powerlaw.num_cols)
        occupancies, touched = estimator.sample_occupancies(powerlaw, size)
        assert len(occupancies) == -(-powerlaw.num_rows // 16)
        assert touched == powerlaw.nnz

    def test_sampling_is_bounded(self, powerlaw):
        estimator = Swiftiles(SwiftilesConfig(overbooking_target=0.5, samples_in_tail=5))
        size = float(2 * powerlaw.num_cols)
        occupancies, touched = estimator.sample_occupancies(powerlaw, size)
        assert len(occupancies) == estimator.config.num_samples
        assert touched <= powerlaw.nnz

    def test_sampling_cost_below_full_traversal(self, powerlaw):
        estimator = Swiftiles(SwiftilesConfig(overbooking_target=0.25, samples_in_tail=4))
        size = float(powerlaw.num_cols)  # single-row tiles -> many tiles
        _, touched = estimator.sample_occupancies(powerlaw, size)
        assert touched < powerlaw.nnz


class TestEstimate:
    def test_estimate_fields(self, powerlaw):
        estimator = Swiftiles(SwiftilesConfig(overbooking_target=0.1), rng=0)
        estimate = estimator.estimate(powerlaw, 400)
        assert estimate.initial_size > 0
        assert 1.0 <= estimate.target_size <= powerlaw.size
        assert estimate.buffer_capacity == 400
        assert estimate.tax.candidate_sizes == 1

    def test_scale_factor(self, powerlaw):
        estimate = Swiftiles(rng=0).estimate(powerlaw, 400)
        assert estimate.scale_factor == pytest.approx(
            estimate.target_size / estimate.initial_size)

    def test_predicted_distribution_scales(self, powerlaw):
        estimate = Swiftiles(rng=0).estimate(powerlaw, 400)
        predicted = estimate.predicted_distribution()
        assert predicted.count == len(estimate.sampled_occupancies)

    def test_higher_y_gives_larger_tiles(self, powerlaw):
        capacity = 400
        conservative = Swiftiles(SwiftilesConfig(overbooking_target=0.02,
                                                 sample_all_tiles=True)).estimate(
            powerlaw, capacity)
        aggressive = Swiftiles(SwiftilesConfig(overbooking_target=0.5,
                                               sample_all_tiles=True)).estimate(
            powerlaw, capacity)
        assert aggressive.target_size >= conservative.target_size

    def test_achieved_rate_near_target_with_full_sampling(self, powerlaw):
        target = 0.10
        estimator = Swiftiles(SwiftilesConfig(overbooking_target=target,
                                              sample_all_tiles=True))
        estimate = estimator.estimate(powerlaw, 200)
        achieved = estimator.observed_overbooking_rate(powerlaw, estimate.target_size, 200)
        assert abs(achieved - target) < 0.15

    def test_prediction_error_metric(self, powerlaw):
        estimator = Swiftiles(SwiftilesConfig(overbooking_target=0.1,
                                              sample_all_tiles=True))
        assert 0.0 <= estimator.prediction_error(powerlaw, 200) <= 1.0

    def test_observed_rate_monotone_in_capacity(self, powerlaw):
        estimator = Swiftiles()
        size = float(64 * powerlaw.num_cols)
        rates = [estimator.observed_overbooking_rate(powerlaw, size, capacity)
                 for capacity in (50, 200, 800, 5000)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))


@settings(max_examples=15, deadline=None)
@given(
    capacity=st.integers(min_value=50, max_value=2000),
    seed=st.integers(min_value=0, max_value=500),
)
def test_property_target_size_within_bounds(capacity, seed):
    """The Swiftiles prediction is always a valid coordinate-space size."""
    matrix = power_law_matrix(200, 2000, alpha=1.5, rng=seed)
    estimate = Swiftiles(rng=seed).estimate(matrix, capacity)
    assert 1.0 <= estimate.target_size <= matrix.size


@settings(max_examples=15, deadline=None)
@given(capacity=st.integers(min_value=50, max_value=1000))
def test_property_initial_estimate_monotone_in_capacity(capacity):
    """Eq. 2: the initial estimate grows linearly with the buffer capacity."""
    matrix = uniform_random_matrix(100, 100, 2000, rng=1)
    small = Swiftiles.initial_estimate(matrix, capacity)
    large = Swiftiles.initial_estimate(matrix, capacity * 2)
    assert large == pytest.approx(2 * small)
