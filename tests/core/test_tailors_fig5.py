"""Golden test: the operation-by-operation example of Fig. 5 of the paper.

A Tailor with a capacity of four elements and a FIFO-managed region of two
processes the six-element tile ``a b c d e f``.  The test follows the exact
operation sequence of the figure and checks the FIFO offset the paper reports
at each step, the data returned by every read, and the final buffer contents.

One intentional divergence: the figure renormalizes the FIFO-managed region to
a fixed head position for readability, so its "Buffer Offset" column reports
the *displayed* slot.  The model tracks physical slots (the figure's rolling
buffer), so offsets inside the FIFO region can differ by a rotation while the
returned data is identical; the test asserts on data, FIFO offsets, and the
buffet-region offsets, which are unambiguous.
"""

from repro.core.tailors import Tailors, TailorsConfig


def test_fig5_operation_sequence():
    tailor = Tailors(TailorsConfig(capacity=4, fifo_region_size=2))
    tile = ["a", "b", "c", "d", "e", "f"]

    # Steps leading to a full buffer (the figure starts at Fill(d)).
    for index in range(4):
        tailor.fill(tile[index])
    assert tailor.contents() == ["a", "b", "c", "d"]
    assert not tailor.is_overbooked

    # Step: Read(3) -> d at buffer offset 3.
    assert tailor.read(3) == "d"
    assert tailor.offset_of(3) == 3

    # Step: OWFill(e) — initial overwriting fill splits the buffer.
    tailor.overwriting_fill("e", index=4)
    assert tailor.is_overbooked
    assert tailor.fifo_head == 2
    assert tailor.fifo_offset == 2            # paper: FIFO offset = 2
    assert tailor.offset_of(4) == 2           # paper: buffer offset = 2

    # Step: Read(4) -> e.
    assert tailor.read(4) == "e"

    # Step: OWFill(f), Read(5) -> f at offset 3 with FIFO offset still 2.
    tailor.overwriting_fill("f", index=5)
    assert tailor.fifo_offset == 2
    assert tailor.offset_of(5) == 3
    assert tailor.read(5) == "f"

    # Steps: Read(0), Read(1) hit the buffet-managed region unchanged.
    assert tailor.read(0) == "a"
    assert tailor.offset_of(0) == 0
    assert tailor.read(1) == "b"
    assert tailor.offset_of(1) == 1

    # Step: OWFill(c) replaces the oldest streamed element (e) and bumps the
    # FIFO offset to 3 (paper step 9).
    tailor.overwriting_fill("c", index=2)
    assert tailor.fifo_offset == 3

    # Step: Read(2) returns c even though earlier data was replaced.
    assert tailor.read(2) == "c"

    # Step: OWFill(d) replaces f (the end of the tile) and resets the FIFO
    # offset to zero (paper step 11); the buffer again holds a b c d.
    tailor.overwriting_fill("d", index=3)
    assert tailor.fifo_offset == 0
    assert sorted(x for x in tailor.contents() if x is not None) == ["a", "b", "c", "d"]
    assert tailor.read(3) == "d"


def test_fig5_reuse_is_preserved_for_buffet_region():
    """Across the whole Fig. 5 sequence, a and b are never re-fetched."""
    tailor = Tailors(TailorsConfig(capacity=4, fifo_region_size=2))
    for index, value in enumerate("abcd"):
        tailor.fill(value)
    for index, value in [(4, "e"), (5, "f"), (2, "c"), (3, "d")]:
        tailor.overwriting_fill(value, index=index)
    # Four plain fills and four overwriting fills: the head of the tile was
    # fetched exactly once.
    assert tailor.counters.fills == 4
    assert tailor.counters.overwriting_fills == 4
    assert tailor.read(0) == "a" and tailor.read(1) == "b"
