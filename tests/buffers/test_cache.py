"""Tests for the LRU cache model."""

from repro.buffers.cache import LruCache


class TestLruCache:
    def test_miss_then_hit(self):
        cache = LruCache(2)
        assert cache.access("a") is False
        assert cache.access("a") is True

    def test_eviction_of_least_recent(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")        # a becomes most recent
        cache.access("c")        # evicts b
        assert cache.contains("a")
        assert not cache.contains("b")
        assert cache.contains("c")

    def test_occupancy_bounded_by_capacity(self):
        cache = LruCache(3)
        for key in range(10):
            cache.access(key)
        assert cache.occupancy == 3

    def test_hit_rate(self):
        cache = LruCache(4)
        cache.access("x")
        cache.access("x")
        cache.access("x")
        cache.access("y")
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert LruCache(4).hit_rate == 0.0

    def test_get_updates_recency(self):
        cache = LruCache(2)
        cache.access("a", value=1)
        cache.access("b", value=2)
        assert cache.get("a") == 1
        cache.access("c")
        assert cache.contains("a")          # a was refreshed by get
        assert not cache.contains("b")

    def test_get_missing_raises(self):
        cache = LruCache(2)
        try:
            cache.get("missing")
        except KeyError:
            pass
        else:  # pragma: no cover - defensive
            raise AssertionError("expected KeyError")

    def test_counters(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        cache.access("c")
        assert cache.counters.misses == 3
        assert cache.counters.evictions == 1
        assert cache.counters.fills == 3

    def test_scan_thrashing(self):
        """A repeated scan larger than the cache misses on every access (LRU pathology)."""
        cache = LruCache(8)
        for _ in range(3):
            for key in range(16):
                cache.access(key)
        assert cache.counters.misses == 48

    def test_reset(self):
        cache = LruCache(2)
        cache.access("a")
        cache.reset()
        assert cache.occupancy == 0
        assert not cache.contains("a")
