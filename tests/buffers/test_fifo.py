"""Tests for the FIFO storage idiom."""

import pytest

from repro.buffers.base import BufferFullError, BufferStallError
from repro.buffers.fifo import FifoBuffer


class TestFifoBuffer:
    def test_push_pop_order(self):
        fifo = FifoBuffer(4)
        for value in "abc":
            fifo.push(value)
        assert [fifo.pop() for _ in range(3)] == ["a", "b", "c"]

    def test_front_does_not_remove(self):
        fifo = FifoBuffer(2)
        fifo.push("x")
        assert fifo.front() == "x"
        assert fifo.occupancy == 1

    def test_push_full_raises(self):
        fifo = FifoBuffer(1)
        fifo.push(1)
        with pytest.raises(BufferFullError):
            fifo.push(2)

    def test_pop_empty_raises(self):
        with pytest.raises(BufferStallError):
            FifoBuffer(1).pop()

    def test_front_empty_raises(self):
        with pytest.raises(BufferStallError):
            FifoBuffer(1).front()

    def test_occupancy_and_utilization(self):
        fifo = FifoBuffer(4)
        fifo.push(1)
        fifo.push(2)
        assert fifo.occupancy == 2
        assert fifo.utilization == 0.5
        assert fifo.free_capacity == 2
        assert not fifo.is_full

    def test_counters(self):
        fifo = FifoBuffer(4)
        fifo.push(1)
        fifo.push(2)
        fifo.pop()
        fifo.front()
        assert fifo.counters.fills == 2
        assert fifo.counters.reads == 2
        assert fifo.counters.shrinks == 1

    def test_reset_clears_contents_but_not_counters(self):
        fifo = FifoBuffer(4)
        fifo.push(1)
        fifo.reset()
        assert fifo.occupancy == 0
        assert fifo.counters.fills == 1

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError):
            FifoBuffer(0)

    def test_describe(self):
        fifo = FifoBuffer(3, name="my-fifo")
        description = fifo.describe()
        assert description["name"] == "my-fifo"
        assert description["capacity"] == 3
