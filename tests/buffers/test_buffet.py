"""Tests for the buffet storage idiom."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffers.base import BufferFullError, BufferStallError
from repro.buffers.buffet import Buffet


class TestBuffetOperations:
    def test_fill_then_read(self):
        buffet = Buffet(4)
        for index, value in enumerate("abcd"):
            buffet.fill(value)
            assert buffet.read(index) == value

    def test_read_relative_to_head(self):
        buffet = Buffet(4)
        for value in "abcd":
            buffet.fill(value)
        buffet.shrink(2)
        assert buffet.read(0) == "c"
        assert buffet.read(1) == "d"

    def test_fill_full_raises(self):
        buffet = Buffet(2)
        buffet.fill(1)
        buffet.fill(2)
        with pytest.raises(BufferFullError):
            buffet.fill(3)

    def test_read_beyond_occupancy_stalls(self):
        buffet = Buffet(4)
        buffet.fill("a")
        with pytest.raises(BufferStallError):
            buffet.read(1)

    def test_update(self):
        buffet = Buffet(3)
        buffet.fill("a")
        buffet.fill("b")
        buffet.update(1, "B")
        assert buffet.read(1) == "B"

    def test_update_beyond_occupancy_stalls(self):
        buffet = Buffet(3)
        with pytest.raises(BufferStallError):
            buffet.update(0, "x")

    def test_shrink_frees_oldest(self):
        buffet = Buffet(3)
        for value in "abc":
            buffet.fill(value)
        buffet.shrink(1)
        assert buffet.contents() == ["b", "c"]
        assert buffet.occupancy == 2

    def test_shrink_more_than_occupancy_raises(self):
        buffet = Buffet(3)
        buffet.fill(1)
        with pytest.raises(BufferStallError):
            buffet.shrink(2)

    def test_rolling_reuse_of_slots(self):
        buffet = Buffet(2)
        buffet.fill("a")
        buffet.fill("b")
        buffet.shrink(1)
        buffet.fill("c")
        assert buffet.contents() == ["b", "c"]

    def test_index_to_offset_rolls(self):
        buffet = Buffet(3)
        for value in "abc":
            buffet.fill(value)
        buffet.shrink(2)
        assert buffet.index_to_offset(0) == 2

    def test_index_to_offset_beyond_capacity_raises(self):
        with pytest.raises(IndexError):
            Buffet(2).index_to_offset(2)


class TestBuffetCredits:
    def test_fill_consumes_credit(self):
        buffet = Buffet(3)
        buffet.fill(1)
        assert buffet.credits.available == 2

    def test_shrink_releases_credit(self):
        buffet = Buffet(3)
        buffet.fill(1)
        buffet.shrink(1)
        assert buffet.credits.available == 3

    def test_can_fill_tracks_capacity(self):
        buffet = Buffet(1)
        assert buffet.can_fill()
        buffet.fill(1)
        assert not buffet.can_fill()


class TestBuffetCounters:
    def test_counts(self):
        buffet = Buffet(4)
        buffet.fill(1)
        buffet.fill(2)
        buffet.read(0)
        buffet.update(1, 3)
        buffet.shrink(2)
        counters = buffet.counters
        assert counters.fills == 2
        assert counters.reads == 1
        assert counters.updates == 1
        assert counters.shrinks == 2
        # Accesses to the data array: 2 fills + 1 read + 1 update.
        assert counters.total_accesses() == 4

    def test_reset(self):
        buffet = Buffet(2)
        buffet.fill(1)
        buffet.reset()
        assert buffet.occupancy == 0
        assert buffet.credits.available == 2


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["fill", "read", "shrink"]), max_size=60))
def test_property_buffet_never_loses_unshrunk_data(operations):
    """Data filled into a buffet stays readable until explicitly shrunk."""
    capacity = 8
    buffet = Buffet(capacity)
    queue = []  # model of what the buffet should hold, head first
    next_value = 0
    for operation in operations:
        if operation == "fill" and len(queue) < capacity:
            buffet.fill(next_value)
            queue.append(next_value)
            next_value += 1
        elif operation == "read" and queue:
            index = len(queue) - 1
            assert buffet.read(index) == queue[index]
        elif operation == "shrink" and queue:
            buffet.shrink(1)
            queue.pop(0)
    assert buffet.contents() == queue
