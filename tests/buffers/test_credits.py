"""Tests for credit-based flow control."""

import pytest

from repro.buffers.credits import CreditChannel


class TestCreditChannel:
    def test_initial_credits(self):
        channel = CreditChannel(4)
        assert channel.available == 4
        assert channel.can_send(4)

    def test_consume_and_release(self):
        channel = CreditChannel(4)
        channel.consume(3)
        assert channel.available == 1
        channel.release(2)
        assert channel.available == 3

    def test_cannot_consume_more_than_available(self):
        channel = CreditChannel(2)
        channel.consume(2)
        with pytest.raises(ValueError):
            channel.consume(1)

    def test_cannot_release_above_initial(self):
        channel = CreditChannel(2)
        with pytest.raises(ValueError):
            channel.release(1)

    def test_can_send(self):
        channel = CreditChannel(2)
        channel.consume(2)
        assert not channel.can_send(1)

    def test_lifetime_totals(self):
        channel = CreditChannel(3)
        channel.consume(2)
        channel.release(2)
        channel.consume(1)
        assert channel.total_granted == 3
        assert channel.total_released == 2

    def test_reset_restores_credits_keeps_totals(self):
        channel = CreditChannel(3)
        channel.consume(3)
        channel.reset()
        assert channel.available == 3
        assert channel.total_granted == 3

    def test_invalid_initial_raises(self):
        with pytest.raises(ValueError):
            CreditChannel(0)

    def test_release_zero_is_noop(self):
        channel = CreditChannel(2)
        channel.consume(1)
        channel.release(0)
        assert channel.available == 1
