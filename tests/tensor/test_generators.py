"""Tests for the synthetic sparse matrix generators."""

import numpy as np
import pytest

from repro.tensor import generators


class TestUniformRandom:
    def test_shape_and_nnz(self):
        m = generators.uniform_random_matrix(100, 80, 500, rng=0)
        assert m.csr.shape == (100, 80)
        assert m.nnz == 500

    def test_values_are_ones(self):
        m = generators.uniform_random_matrix(50, 50, 100, rng=0)
        assert np.all(m.values() == 1.0)

    def test_deterministic_with_seed(self):
        a = generators.uniform_random_matrix(60, 60, 300, rng=5)
        b = generators.uniform_random_matrix(60, 60, 300, rng=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = generators.uniform_random_matrix(60, 60, 300, rng=5)
        b = generators.uniform_random_matrix(60, 60, 300, rng=6)
        assert a != b

    def test_nnz_capped_at_size(self):
        m = generators.uniform_random_matrix(5, 5, 1000, rng=0)
        assert m.nnz <= 25

    def test_invalid_nnz_raises(self):
        with pytest.raises(ValueError):
            generators.uniform_random_matrix(10, 10, 0, rng=0)


class TestErdosRenyi:
    def test_density_approximate(self):
        m = generators.erdos_renyi_matrix(200, 0.05, rng=1)
        assert abs(m.density - 0.05) < 0.01

    def test_invalid_density_raises(self):
        with pytest.raises(ValueError):
            generators.erdos_renyi_matrix(100, 0.0, rng=1)


class TestBanded:
    def test_square_shape(self):
        m = generators.banded_matrix(128, bandwidth=4, rng=0)
        assert m.csr.shape == (128, 128)

    def test_diagonal_fully_populated(self):
        m = generators.banded_matrix(64, bandwidth=3, band_fill=0.4, rng=0)
        assert np.all(np.diag(m.to_dense()) != 0)

    def test_band_structure_dominates(self):
        m = generators.banded_matrix(200, bandwidth=5, band_fill=0.9,
                                     off_band_nnz=0, rng=0)
        rows, cols = m.coordinates()
        assert np.all(np.abs(rows - cols) <= 5)

    def test_off_band_scatter_present(self):
        m = generators.banded_matrix(200, bandwidth=3, band_fill=0.5,
                                     off_band_nnz=500, rng=0)
        rows, cols = m.coordinates()
        assert np.any(np.abs(rows - cols) > 3)

    def test_density_scales_with_fill(self):
        sparse_fill = generators.banded_matrix(100, bandwidth=8, band_fill=0.2, rng=0)
        dense_fill = generators.banded_matrix(100, bandwidth=8, band_fill=0.9, rng=0)
        assert dense_fill.nnz > sparse_fill.nnz


class TestBlockDiagonal:
    def test_blocks_are_dense_regions(self):
        m = generators.block_diagonal_matrix(120, block_size=30, block_fill=0.6, rng=0)
        occ = m.tile_occupancies(30, 30)
        grid = 4
        diag_ids = [i * grid + i for i in range(grid)]
        diag_occ = occ[diag_ids].sum()
        assert diag_occ > 0.9 * occ.sum()

    def test_diagonal_populated(self):
        m = generators.block_diagonal_matrix(90, block_size=45, rng=0)
        assert np.all(np.diag(m.to_dense()) != 0)


class TestPowerLaw:
    def test_nnz_close_to_target(self):
        m = generators.power_law_matrix(500, 5000, alpha=1.6, rng=0)
        assert abs(m.nnz - 5000) / 5000 < 0.05

    def test_row_degrees_are_skewed(self):
        m = generators.power_law_matrix(800, 12_000, alpha=1.7, rng=1)
        degrees = np.sort(m.row_occupancies())[::-1]
        top_share = degrees[: len(degrees) // 20].sum() / m.nnz
        # The top 5% of rows should carry well above 5% of the nonzeros.
        assert top_share > 0.15

    def test_degree_cap_respected(self):
        m = generators.power_law_matrix(800, 10_000, alpha=1.4,
                                        max_degree_fraction=0.02, rng=1)
        # The cap limits the initial hub degrees; collisions and top-up keep
        # the realized maximum in the same ballpark.
        assert m.row_occupancies().max() <= 0.04 * m.nnz

    def test_deterministic(self):
        a = generators.power_law_matrix(300, 2500, rng=3)
        b = generators.power_law_matrix(300, 2500, rng=3)
        assert a == b

    def test_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            generators.power_law_matrix(100, 500, alpha=0.0, rng=0)


class TestRoadNetwork:
    def test_shape(self):
        m = generators.road_network_matrix(400, rng=0)
        assert m.csr.shape == (400, 400)

    def test_mostly_low_degree(self):
        m = generators.road_network_matrix(900, num_clusters=4, cluster_size=30,
                                            cluster_fill=0.3, rng=0)
        median_degree = np.median(m.row_occupancies())
        assert median_degree <= 8

    def test_clusters_create_skew(self):
        flat = generators.road_network_matrix(900, num_clusters=0, rng=1)
        clustered = generators.road_network_matrix(900, num_clusters=8,
                                                   cluster_size=60,
                                                   cluster_fill=0.4, rng=1)
        assert clustered.row_occupancies().max() > flat.row_occupancies().max()

    def test_deterministic(self):
        a = generators.road_network_matrix(300, rng=9)
        b = generators.road_network_matrix(300, rng=9)
        assert a == b


class TestDensityGradient:
    def test_shape_and_nnz(self):
        m = generators.density_gradient_matrix(200, 150, 2000, rng=0)
        assert m.csr.shape == (200, 150)
        assert 0.9 * 2000 <= m.nnz <= 2000

    def test_density_ramps_along_rows(self):
        m = generators.density_gradient_matrix(400, 400, 8000, gamma=2.0, rng=1)
        occupancies = m.row_occupancies()
        top = occupancies[:100].sum()
        bottom = occupancies[-100:].sum()
        assert bottom > 3 * top

    def test_gamma_zero_is_flat(self):
        m = generators.density_gradient_matrix(400, 400, 8000, gamma=0.0, rng=2)
        occupancies = m.row_occupancies()
        assert occupancies[-100:].sum() < 2 * occupancies[:100].sum()

    def test_larger_gamma_is_more_skewed(self):
        mild = generators.density_gradient_matrix(300, 300, 5000, gamma=0.5, rng=3)
        steep = generators.density_gradient_matrix(300, 300, 5000, gamma=4.0, rng=3)
        assert steep.row_occupancies().max() > mild.row_occupancies().max()

    def test_deterministic(self):
        a = generators.density_gradient_matrix(250, 250, 3000, gamma=2.0, rng=7)
        b = generators.density_gradient_matrix(250, 250, 3000, gamma=2.0, rng=7)
        assert a == b

    def test_nnz_capped_at_size(self):
        m = generators.density_gradient_matrix(10, 10, 1000, gamma=1.0, rng=0)
        assert m.nnz <= 100

    def test_negative_gamma_raises(self):
        with pytest.raises(ValueError):
            generators.density_gradient_matrix(100, 100, 500, gamma=-1.0, rng=0)
