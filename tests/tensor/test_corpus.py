"""The corpus manager: catalogs, transports, the checksummed offline cache.

Everything here runs against the committed fixture corpus under
``tests/data/corpus/`` — through ``file://`` URLs or the in-memory fake
transport — so the whole subsystem is exercised with zero network access.
"""

import gzip
import json
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.tensor import corpus
from repro.tensor.corpus import (
    ChecksumMismatch,
    CorpusCache,
    CorpusError,
    CorpusFetchWarning,
    InMemoryTransport,
    MatrixDescriptor,
    UrllibTransport,
    builtin_catalog,
    corpus_workload_suite,
    load_manifest,
    parse_corpus_ids,
    read_smtx,
    resolve_catalog,
)
from repro.utils import faults
from repro.utils.faults import FaultInjector

FIXTURES = Path(__file__).resolve().parents[1] / "data" / "corpus"
MANIFEST = FIXTURES / "manifest.json"

#: Every fixture matrix ID, dataset-major.
FIXTURE_IDS = [
    "dlmc:fixture/magnitude-080",
    "dlmc:fixture/random-050",
    "suitesparse:fixture/fem-band",
    "suitesparse:fixture/powerlaw-graph",
    "suitesparse:fixture/cant-mini",
]


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    faults.set_injector(FaultInjector())
    yield
    faults.set_injector(None)


@pytest.fixture(autouse=True)
def _no_ambient_corpus_env(monkeypatch):
    monkeypatch.delenv(corpus.ENV_CACHE, raising=False)
    monkeypatch.delenv(corpus.ENV_OFFLINE, raising=False)


@pytest.fixture
def cache(tmp_path):
    return CorpusCache(tmp_path / "cache")


@pytest.fixture
def catalog():
    return resolve_catalog(MANIFEST)


def fake_transport():
    """An in-memory transport serving the fixture corpus by its real URLs."""
    resources = {}
    for descriptor in load_manifest(MANIFEST):
        local = FIXTURES / descriptor.url.rsplit("/", 1)[-1]
        resources[descriptor.url] = local.read_bytes()
    return InMemoryTransport(resources)


class TestParseCorpusIds:
    def test_sticky_dataset_prefix(self):
        ids = parse_corpus_ids("dlmc:a/b,c/d,suitesparse:Williams/cant")
        assert ids == ["dlmc:a/b", "dlmc:c/d", "suitesparse:Williams/cant"]

    def test_default_dataset(self):
        assert parse_corpus_ids("g/n", default_dataset="dlmc") == ["dlmc:g/n"]

    def test_missing_dataset_prefix_is_an_error(self):
        with pytest.raises(CorpusError, match="no dataset prefix"):
            parse_corpus_ids("Williams/cant")

    def test_missing_group_is_an_error(self):
        with pytest.raises(CorpusError, match="no group"):
            parse_corpus_ids("dlmc:cant")

    def test_empty_spec_is_an_error(self):
        with pytest.raises(CorpusError, match="empty corpus spec"):
            parse_corpus_ids(" , ")


class TestDescriptorsAndCatalogs:
    def test_builtin_catalog_covers_the_papers_matrices(self):
        catalog = builtin_catalog()
        assert "suitesparse:Williams/cant" in catalog
        assert "suitesparse:SNAP/web-Google" in catalog
        suitesparse = [d for d in catalog if d.dataset == "suitesparse"]
        assert len(suitesparse) == 22  # the paper's Table 2 evaluation set
        assert all(d.format == "tar.gz" and d.member for d in suitesparse)
        dlmc = [d for d in catalog if d.dataset == "dlmc"]
        assert dlmc and all(d.member.endswith(".smtx") for d in dlmc)

    def test_unknown_matrix_error_names_siblings(self):
        with pytest.raises(CorpusError, match="Williams/cant"):
            builtin_catalog().get("suitesparse:Williams/nope")

    def test_unknown_dataset_error_suggests_a_manifest(self):
        with pytest.raises(CorpusError, match="manifest"):
            builtin_catalog().get("nonsense:a/b")

    def test_unknown_format_rejected(self):
        with pytest.raises(CorpusError, match="unknown corpus format"):
            MatrixDescriptor(dataset="d", group="g", name="n",
                             url="file:///x", format="zip")

    def test_archive_entry_requires_member(self):
        with pytest.raises(CorpusError, match="member"):
            MatrixDescriptor(dataset="d", group="g", name="n",
                             url="file:///x", format="tar.gz")

    def test_installed_suffix_follows_archive_member(self):
        descriptor = MatrixDescriptor(
            dataset="dlmc", group="g", name="n", url="file:///x",
            format="tar.gz", member="dlmc/g/n.smtx")
        assert descriptor.installed_suffix == ".smtx"
        assert descriptor.filename == "n.smtx"


class TestManifest:
    def test_relative_urls_resolve_against_the_manifest(self):
        catalog = load_manifest(MANIFEST)
        for descriptor in catalog:
            assert descriptor.url.startswith("file://")
            assert descriptor.sha256 and descriptor.rows and descriptor.nnz

    def test_manifest_overlays_the_builtin_catalog(self, catalog):
        assert "suitesparse:fixture/fem-band" in catalog
        assert "suitesparse:Williams/cant" in catalog  # builtin still there

    def test_missing_manifest_is_a_corpus_error(self, tmp_path):
        with pytest.raises(CorpusError, match="cannot read"):
            load_manifest(tmp_path / "absent.json")

    def test_invalid_json_is_a_corpus_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(CorpusError, match="not valid JSON"):
            load_manifest(path)

    def test_entry_errors_name_their_index(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(
            {"dataset": "dlmc",
             "matrices": [{"group": "g", "name": "n", "url": "u"},
                          {"group": "g", "url": "u"}]}))
        with pytest.raises(CorpusError, match=r"matrices\[1\]"):
            load_manifest(path)

    def test_missing_dataset_everywhere_is_an_error(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(
            {"matrices": [{"group": "g", "name": "n", "url": "u"}]}))
        with pytest.raises(CorpusError, match="dataset"):
            load_manifest(path)


class TestTransports:
    def test_in_memory_transport_records_requests(self):
        transport = InMemoryTransport({"u": b"payload"})
        import io

        sink = io.BytesIO()
        transport.fetch("u", sink)
        assert sink.getvalue() == b"payload"
        assert transport.requests == ["u"]

    def test_in_memory_transport_unknown_url_raises_oserror(self):
        import io

        with pytest.raises(OSError, match="no resource"):
            InMemoryTransport({}).fetch("u", io.BytesIO())

    def test_urllib_transport_serves_file_urls(self, tmp_path):
        import io

        path = tmp_path / "payload.bin"
        path.write_bytes(b"local bytes")
        sink = io.BytesIO()
        UrllibTransport().fetch(path.as_uri(), sink)
        assert sink.getvalue() == b"local bytes"

    def test_default_transport_override_and_restore(self):
        fake = InMemoryTransport({})
        corpus.set_default_transport(fake)
        try:
            assert corpus.default_transport() is fake
        finally:
            corpus.set_default_transport(None)
        assert isinstance(corpus.default_transport(), UrllibTransport)


class TestCacheInstall:
    @pytest.mark.parametrize("matrix_id", FIXTURE_IDS)
    def test_fetch_installs_every_wire_format(self, cache, catalog, matrix_id):
        descriptor = catalog.get(matrix_id)
        path = cache.ensure_local(descriptor, transport=fake_transport())
        assert path.exists()
        assert path == cache.matrix_path(descriptor)
        receipt = json.loads(cache.receipt_path(descriptor).read_text())
        assert receipt["matrix_id"] == matrix_id
        assert receipt["size"] == path.stat().st_size

    def test_warm_hit_touches_no_transport(self, cache, catalog):
        descriptor = catalog.get("dlmc:fixture/magnitude-080")
        transport = fake_transport()
        cache.ensure_local(descriptor, transport=transport)
        assert len(transport.requests) == 1
        cache.ensure_local(descriptor, transport=transport)
        assert len(transport.requests) == 1  # served from the cache

    def test_refresh_refetches(self, cache, catalog):
        descriptor = catalog.get("suitesparse:fixture/powerlaw-graph")
        transport = fake_transport()
        cache.ensure_local(descriptor, transport=transport)
        cache.ensure_local(descriptor, transport=transport, refresh=True)
        assert transport.requests.count(descriptor.url) == 2

    def test_archive_download_shared_across_members(self, cache, tmp_path):
        # Two descriptors pointing into the same archive: one download.
        base = load_manifest(MANIFEST).get("suitesparse:fixture/cant-mini")
        twin = MatrixDescriptor(
            dataset=base.dataset, group=base.group, name="cant-twin",
            url=base.url, sha256=base.sha256, format="tar.gz",
            member=base.member)
        transport = fake_transport()
        cache.ensure_local(base, transport=transport)
        cache.ensure_local(twin, transport=transport)
        assert transport.requests.count(base.url) == 1

    def test_missing_archive_member_is_a_clear_error(self, cache):
        base = load_manifest(MANIFEST).get("suitesparse:fixture/cant-mini")
        wrong = MatrixDescriptor(
            dataset=base.dataset, group=base.group, name=base.name,
            url=base.url, sha256=base.sha256, format="tar.gz",
            member="cant-mini/absent.mtx")
        with pytest.raises(CorpusError, match="absent.mtx"):
            cache.ensure_local(wrong, transport=fake_transport())


class TestTornCache:
    def test_truncated_install_is_a_miss_and_refetched(self, cache, catalog):
        descriptor = catalog.get("suitesparse:fixture/fem-band")
        transport = fake_transport()
        path = cache.ensure_local(descriptor, transport=transport)
        good = path.read_bytes()
        path.write_bytes(good[: len(good) // 2])  # torn sync / truncation

        assert cache.installed_path(descriptor) is None
        assert list(cache.quarantine_root.iterdir())  # sidelined, not served
        fresh = cache.ensure_local(descriptor, transport=transport)
        assert fresh.read_bytes() == good
        assert transport.requests.count(descriptor.url) == 2

    def test_install_without_receipt_is_a_miss(self, cache, catalog):
        descriptor = catalog.get("suitesparse:fixture/fem-band")
        transport = fake_transport()
        cache.ensure_local(descriptor, transport=transport)
        cache.receipt_path(descriptor).unlink()
        assert cache.installed_path(descriptor) is None


class TestChecksums:
    def test_mismatch_quarantines_warns_and_refetches(self, cache, catalog):
        descriptor = catalog.get("dlmc:fixture/random-050")
        good = (FIXTURES / "random-050.smtx").read_bytes()
        served = iter([b"corrupted bytes", good])
        transport = InMemoryTransport({descriptor.url: lambda: next(served)})

        with pytest.warns(CorpusFetchWarning, match="checksum mismatch"):
            path = cache.ensure_local(descriptor, transport=transport)
        assert path.read_bytes() == good
        quarantined = list(cache.quarantine_root.iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].name.startswith("checksum-mismatch")
        assert quarantined[0].read_bytes() == b"corrupted bytes"

    def test_persistent_mismatch_raises_checksum_mismatch(self, cache, catalog):
        descriptor = catalog.get("dlmc:fixture/random-050")
        transport = InMemoryTransport({descriptor.url: b"always wrong"})
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CorpusFetchWarning)
            with pytest.raises(ChecksumMismatch, match="twice"):
                cache.ensure_local(descriptor, transport=transport)
        assert len(list(cache.quarantine_root.iterdir())) == 2
        assert cache.installed_path(descriptor) is None

    def test_trust_on_first_use_records_digest_in_receipt(self, cache):
        unpinned = MatrixDescriptor(
            dataset="suitesparse", group="fixture", name="powerlaw-graph",
            url=(FIXTURES / "powerlaw-graph.mtx").as_uri(), format="mtx")
        path = cache.ensure_local(unpinned)
        receipt = json.loads(cache.receipt_path(unpinned).read_text())
        import hashlib

        assert receipt["sha256"] == hashlib.sha256(
            path.read_bytes()).hexdigest()


class TestOfflineAndDegradation:
    def test_offline_mode_refuses_remote_urls(self, cache):
        remote = MatrixDescriptor(
            dataset="suitesparse", group="g", name="n",
            url="https://example.org/n.mtx", format="mtx")
        with pytest.raises(CorpusError, match="offline mode"):
            cache.ensure_local(remote, offline=True)

    def test_offline_env_variable_is_honored(self, cache, monkeypatch):
        monkeypatch.setenv(corpus.ENV_OFFLINE, "1")
        remote = MatrixDescriptor(
            dataset="suitesparse", group="g", name="n",
            url="https://example.org/n.mtx", format="mtx")
        with pytest.raises(CorpusError, match="offline mode"):
            cache.ensure_local(remote)

    def test_offline_mode_still_serves_file_urls(self, cache, catalog):
        descriptor = catalog.get("suitesparse:fixture/powerlaw-graph")
        assert cache.ensure_local(descriptor, offline=True).exists()

    def test_transport_failure_degrades_to_cached_copy(self, cache, catalog):
        descriptor = catalog.get("suitesparse:fixture/fem-band")
        path = cache.ensure_local(descriptor, transport=fake_transport())
        dead = InMemoryTransport({})  # every fetch raises OSError
        with pytest.warns(CorpusFetchWarning, match="using the cached copy"):
            served = cache.ensure_local(descriptor, transport=dead,
                                        refresh=True)
        assert served == path

    def test_transport_failure_with_cold_cache_is_a_clear_error(self, cache,
                                                                catalog):
        descriptor = catalog.get("suitesparse:fixture/fem-band")
        with pytest.raises(CorpusError) as excinfo:
            cache.ensure_local(descriptor, transport=InMemoryTransport({}))
        message = str(excinfo.value)
        assert "not cached" in message
        assert descriptor.url in message
        assert str(cache.matrix_path(descriptor)) in message


class TestFaultInjection:
    def test_corpus_fetch_fault_degrades_to_cache(self, cache, catalog):
        descriptor = catalog.get("dlmc:fixture/magnitude-080")
        transport = fake_transport()
        cache.ensure_local(descriptor, transport=transport)

        faults.set_injector(FaultInjector.from_spec("corpus.fetch=1"))
        with pytest.warns(CorpusFetchWarning, match="injected transient"):
            path = cache.ensure_local(descriptor, transport=transport,
                                      refresh=True)
        assert path.exists()
        assert faults.active().fired["corpus.fetch"] == 1

    def test_corpus_fetch_fault_on_cold_cache_errors_clearly(self, cache,
                                                             catalog):
        descriptor = catalog.get("dlmc:fixture/magnitude-080")
        faults.set_injector(FaultInjector.from_spec("corpus.fetch=1"))
        with pytest.raises(CorpusError, match="not cached"):
            cache.ensure_local(descriptor, transport=fake_transport())

    def test_corpus_corrupt_fault_quarantines_and_refetches(self, cache,
                                                            catalog):
        descriptor = catalog.get("dlmc:fixture/random-050")
        transport = fake_transport()
        faults.set_injector(FaultInjector.from_spec("corpus.corrupt=1"))
        with pytest.warns(CorpusFetchWarning, match="checksum mismatch"):
            path = cache.ensure_local(descriptor, transport=transport)
        assert path.read_bytes() == (FIXTURES / "random-050.smtx").read_bytes()
        assert faults.active().fired["corpus.corrupt"] == 1
        assert any(entry.name.startswith("checksum-mismatch")
                   for entry in cache.quarantine_root.iterdir())

    def test_corpus_sites_are_known_to_the_spec_parser(self):
        injector = FaultInjector.from_spec("corpus.fetch=2,corpus.corrupt=1")
        assert injector.armed("corpus.fetch")
        assert injector.armed("corpus.corrupt")


class TestVerifyAndGc:
    def test_verify_reports_ok_and_quarantines_corruption(self, cache,
                                                          catalog):
        fem = catalog.get("suitesparse:fixture/fem-band")
        graph = catalog.get("suitesparse:fixture/powerlaw-graph")
        transport = fake_transport()
        cache.ensure_local(fem, transport=transport)
        target = cache.ensure_local(graph, transport=transport)
        # Same-size bit rot: the torn-file size check cannot catch this,
        # only a real re-hash can.
        data = bytearray(target.read_bytes())
        data[len(data) // 2] ^= 0xFF
        target.write_bytes(bytes(data))

        outcome = cache.verify([fem, graph])
        assert outcome.ok == 1
        assert outcome.corrupt == [graph.matrix_id]
        assert cache.installed_path(graph) is None  # quarantined
        # The next ensure_local re-fetches cleanly.
        fresh = cache.ensure_local(graph, transport=transport)
        assert cache.verify([graph]).ok == 1
        assert fresh.exists()

    def test_verify_without_descriptors_scans_everything(self, cache, catalog):
        transport = fake_transport()
        for matrix_id in FIXTURE_IDS:
            cache.ensure_local(catalog.get(matrix_id), transport=transport)
        outcome = cache.verify()
        assert outcome.checked == len(FIXTURE_IDS)
        assert outcome.ok == len(FIXTURE_IDS)

    def test_gc_reclaims_downloads_and_quarantine_keeps_matrices(self, cache,
                                                                 catalog):
        descriptor = catalog.get("suitesparse:fixture/cant-mini")
        path = cache.ensure_local(descriptor, transport=fake_transport())
        cache.quarantine_root.mkdir(parents=True, exist_ok=True)
        (cache.quarantine_root / "junk").write_bytes(b"x" * 100)

        outcome = cache.gc()
        assert outcome.removed_downloads == 1  # the shared archive
        assert outcome.removed_quarantined == 1
        assert outcome.reclaimed_bytes > 100
        assert path.exists()  # installed tier untouched
        assert cache.installed_path(descriptor) == path


class TestReadSmtx:
    def test_round_trips_the_fixture_mask(self):
        matrix = read_smtx(FIXTURES / "magnitude-080.smtx")
        assert matrix.name == "magnitude-080"
        assert (matrix.num_rows, matrix.num_cols) == (96, 128)
        header = (FIXTURES / "magnitude-080.smtx").read_text().splitlines()[0]
        assert matrix.nnz == int(header.replace(",", " ").split()[2])
        assert np.all(matrix.values() == 1.0)

    def test_malformed_header_is_a_value_error(self, tmp_path):
        path = tmp_path / "bad.smtx"
        path.write_text("1 2\n0 1\n0\n")
        with pytest.raises(ValueError, match="malformed .smtx header"):
            read_smtx(path)

    def test_inconsistent_counts_are_value_errors(self, tmp_path):
        path = tmp_path / "bad.smtx"
        path.write_text("2, 2, 3\n0 1 2\n0 1\n")
        with pytest.raises(ValueError, match="column indices"):
            read_smtx(path)
        path.write_text("2, 2, 2\n0 1\n0 1\n")
        with pytest.raises(ValueError, match="row offsets"):
            read_smtx(path)


class TestCorpusWorkloadSuite:
    def test_builds_lazy_suite_with_manifest_metadata(self, cache):
        suite = corpus_workload_suite(
            FIXTURE_IDS, manifest=MANIFEST, cache=cache, offline=True)
        assert suite.names == ["magnitude-080", "random-050", "fem-band",
                               "powerlaw-graph", "cant-mini"]
        # Dimension metadata came from the manifest: nothing installed yet.
        assert not list(cache.matrices_root.rglob("*.smtx"))
        spec = suite.spec("magnitude-080")
        assert spec.category == "corpus"
        assert spec.paper_rows == 96 and spec.paper_cols == 128
        matrix = suite.matrix("magnitude-080")
        assert matrix.nnz == 2496  # now it is installed

    def test_comma_separated_ids_are_expanded(self, cache):
        suite = corpus_workload_suite(
            ["dlmc:fixture/magnitude-080,fixture/random-050"],
            manifest=MANIFEST, cache=cache, offline=True)
        assert suite.names == ["magnitude-080", "random-050"]

    def test_duplicate_ids_are_a_value_error(self, cache):
        with pytest.raises(ValueError, match="duplicate corpus matrix id"):
            corpus_workload_suite(
                ["dlmc:fixture/magnitude-080", "dlmc:fixture/magnitude-080"],
                manifest=MANIFEST, cache=cache, offline=True)

    def test_cache_token_records_ids_and_manifest(self, cache):
        suite = corpus_workload_suite(
            ["dlmc:fixture/magnitude-080"], manifest=MANIFEST, cache=cache,
            offline=True)
        scope, seed, order = suite.cache_token
        assert scope == ("corpus", ("dlmc:fixture/magnitude-080",),
                         str(MANIFEST))
        assert seed == 2023
        assert order == ("magnitude-080",)

    def test_name_collisions_qualify_with_the_group(self, cache, tmp_path):
        manifest = tmp_path / "collide.json"
        manifest.write_text(json.dumps({"matrices": [
            {"dataset": "suitesparse", "group": "alpha", "name": "same",
             "url": (FIXTURES / "powerlaw-graph.mtx").as_uri(),
             "format": "mtx", "rows": 140, "cols": 140, "nnz": 1400},
            {"dataset": "suitesparse", "group": "beta/deep", "name": "same",
             "url": (FIXTURES / "powerlaw-graph.mtx").as_uri(),
             "format": "mtx", "rows": 140, "cols": 140, "nnz": 1400},
        ]}))
        suite = corpus_workload_suite(
            ["suitesparse:alpha/same", "suitesparse:beta/deep/same"],
            manifest=manifest, cache=cache, offline=True)
        assert suite.names == ["alpha.same", "beta.deep.same"]

    def test_unknown_id_is_a_corpus_error(self, cache):
        with pytest.raises(CorpusError, match="unknown corpus matrix"):
            corpus_workload_suite(["dlmc:fixture/absent"], manifest=MANIFEST,
                                  cache=cache, offline=True)

    def test_load_failure_names_the_matrix_and_path(self, cache, catalog):
        descriptor = catalog.get("dlmc:fixture/magnitude-080")
        suite = corpus_workload_suite(
            ["dlmc:fixture/magnitude-080"], manifest=MANIFEST, cache=cache,
            offline=True)
        path = cache.ensure_local(descriptor, offline=True)
        path.write_text("garbage\n")
        cache._write_receipt(descriptor, path)  # keep the receipt consistent
        with pytest.raises(CorpusError, match="magnitude-080"):
            suite.matrix("magnitude-080")
