"""Tests for MatrixMarket persistence."""

import numpy as np
import pytest

from repro.tensor.io import (
    matrix_market_dimensions,
    matrix_market_name,
    read_matrix_market,
    write_matrix_market,
)
from repro.tensor.sparse import SparseMatrix


class TestHeaderOnlyReads:
    def test_dimensions_without_parsing_entries(self, tmp_path, powerlaw):
        path = tmp_path / "graph.mtx"
        write_matrix_market(powerlaw, path)
        assert matrix_market_dimensions(path) == (
            powerlaw.num_rows, powerlaw.num_cols, powerlaw.nnz)

    def test_dimensions_through_gzip(self, tmp_path, tiny_dense_matrix):
        path = tmp_path / "tiny.mtx.gz"
        write_matrix_market(tiny_dense_matrix, path)
        assert matrix_market_dimensions(path) == (4, 4, tiny_dense_matrix.nnz)

    def test_dimensions_reject_non_matrix_market(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a header\n")
        with pytest.raises(ValueError, match="MatrixMarket"):
            matrix_market_dimensions(path)

    def test_name_strips_extensions(self):
        assert matrix_market_name("/data/cage12.mtx.gz") == "cage12"
        assert matrix_market_name("cant.mtx") == "cant"


class TestRoundtrip:
    def test_real_roundtrip(self, tmp_path, tiny_dense_matrix):
        path = tmp_path / "tiny.mtx"
        write_matrix_market(tiny_dense_matrix, path)
        loaded = read_matrix_market(path)
        assert loaded == tiny_dense_matrix

    def test_pattern_roundtrip_keeps_positions(self, tmp_path, tiny_dense_matrix):
        path = tmp_path / "tiny_pattern.mtx"
        write_matrix_market(tiny_dense_matrix, path, pattern=True)
        loaded = read_matrix_market(path)
        assert loaded.nnz == tiny_dense_matrix.nnz
        assert np.all(loaded.values() == 1.0)

    def test_gzip_roundtrip(self, tmp_path, powerlaw):
        path = tmp_path / "graph.mtx.gz"
        write_matrix_market(powerlaw, path)
        loaded = read_matrix_market(path)
        assert loaded == powerlaw

    def test_name_from_filename(self, tmp_path, tiny_dense_matrix):
        path = tmp_path / "workload42.mtx"
        write_matrix_market(tiny_dense_matrix, path)
        assert read_matrix_market(path).name == "workload42"

    def test_explicit_name(self, tmp_path, tiny_dense_matrix):
        path = tmp_path / "x.mtx"
        write_matrix_market(tiny_dense_matrix, path)
        assert read_matrix_market(path, name="custom").name == "custom"


class TestReaderEdgeCases:
    def test_symmetric_matrix_is_mirrored(self, tmp_path):
        path = tmp_path / "sym.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 2\n"
            "2 1 5.0\n"
            "3 3 7.0\n"
        )
        loaded = read_matrix_market(path)
        dense = loaded.to_dense()
        assert dense[1, 0] == 5.0 and dense[0, 1] == 5.0
        assert dense[2, 2] == 7.0
        assert loaded.nnz == 3

    def test_comments_are_skipped(self, tmp_path):
        path = tmp_path / "comments.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment line\n"
            "% another\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        loaded = read_matrix_market(path)
        assert loaded.to_dense()[0, 1] == 3.5

    def test_not_matrix_market_raises(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("hello world\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_array_format_rejected(self, tmp_path):
        path = tmp_path / "arr.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "trunc.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "3 3 5\n"
            "1 1 1.0\n"
        )
        with pytest.raises(ValueError):
            read_matrix_market(path)

    def test_pattern_file_values_default_to_one(self, tmp_path):
        path = tmp_path / "pat.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "2 3 2\n"
            "1 1\n"
            "2 3\n"
        )
        loaded = read_matrix_market(path)
        assert loaded.csr.shape == (2, 3)
        assert np.all(loaded.values() == 1.0)
