"""Tests for the SparseMatrix workhorse."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.coords import Range
from repro.tensor.sparse import SparseMatrix


class TestConstruction:
    def test_from_dense_drops_zeros(self, tiny_dense_matrix):
        assert tiny_dense_matrix.nnz == 5

    def test_from_coo(self):
        m = SparseMatrix.from_coo([0, 1, 2], [2, 0, 1], [1.0, 2.0, 3.0], (3, 3))
        assert m.nnz == 3
        assert m.to_dense()[0, 2] == 1.0

    def test_from_coo_defaults_to_ones(self):
        m = SparseMatrix.from_coo([0, 1], [1, 0], None, (2, 2))
        assert np.all(m.values() == 1.0)

    def test_from_coo_duplicates_are_summed(self):
        m = SparseMatrix.from_coo([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert m.nnz == 1
        assert m.to_dense()[0, 0] == 3.0

    def test_from_coo_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            SparseMatrix.from_coo([0], [0, 1], None, (2, 2))

    def test_identity(self):
        eye = SparseMatrix.identity(4)
        assert eye.nnz == 4
        assert np.array_equal(eye.to_dense(), np.eye(4))

    def test_explicit_zeros_eliminated(self):
        m = SparseMatrix.from_coo([0, 1], [0, 1], [0.0, 2.0], (2, 2))
        assert m.nnz == 1

    def test_equality(self, tiny_dense_matrix):
        clone = SparseMatrix(tiny_dense_matrix.csr, name="other-name")
        assert tiny_dense_matrix == clone

    def test_inequality(self, tiny_dense_matrix):
        assert tiny_dense_matrix != SparseMatrix.identity(4)


class TestProperties:
    def test_shape_and_size(self, tiny_dense_matrix):
        assert tiny_dense_matrix.num_rows == 4
        assert tiny_dense_matrix.num_cols == 4
        assert tiny_dense_matrix.size == 16

    def test_density_and_sparsity_sum_to_one(self, tiny_dense_matrix):
        assert tiny_dense_matrix.density + tiny_dense_matrix.sparsity == pytest.approx(1.0)

    def test_sparsity_value(self, tiny_dense_matrix):
        assert tiny_dense_matrix.sparsity == pytest.approx(11 / 16)

    def test_name(self, tiny_dense_matrix):
        assert tiny_dense_matrix.name == "tiny"


class TestStructureQueries:
    def test_row_occupancies(self, tiny_dense_matrix):
        assert list(tiny_dense_matrix.row_occupancies()) == [2, 0, 2, 1]

    def test_col_occupancies(self, tiny_dense_matrix):
        assert list(tiny_dense_matrix.col_occupancies()) == [2, 1, 1, 1]

    def test_occupancy_sums_match_nnz(self, powerlaw):
        assert powerlaw.row_occupancies().sum() == powerlaw.nnz
        assert powerlaw.col_occupancies().sum() == powerlaw.nnz

    def test_coordinates_roundtrip(self, tiny_dense_matrix):
        rows, cols = tiny_dense_matrix.coordinates()
        rebuilt = SparseMatrix.from_coo(rows, cols, tiny_dense_matrix.values(), (4, 4))
        assert rebuilt == tiny_dense_matrix

    def test_iter_nonzeros_in_row_major_order(self, tiny_dense_matrix):
        triples = list(tiny_dense_matrix.iter_nonzeros())
        assert triples[0] == (0, 0, 1.0)
        rows = [t[0] for t in triples]
        assert rows == sorted(rows)

    def test_row_slice_nnz(self, tiny_dense_matrix):
        assert tiny_dense_matrix.row_slice_nnz(Range(0, 2)) == 2
        assert tiny_dense_matrix.row_slice_nnz(Range(2, 4)) == 3

    def test_row_slice_nnz_clamps(self, tiny_dense_matrix):
        assert tiny_dense_matrix.row_slice_nnz(Range(0, 100)) == 5

    def test_submatrix(self, tiny_dense_matrix):
        block = tiny_dense_matrix.submatrix(Range(0, 2), Range(0, 4))
        assert block.num_rows == 2
        assert block.nnz == 2

    def test_transpose_preserves_nnz(self, powerlaw):
        assert powerlaw.transpose().nnz == powerlaw.nnz

    def test_transpose_is_involution(self, tiny_dense_matrix):
        assert tiny_dense_matrix.transpose().transpose() == tiny_dense_matrix


class TestTileOccupancies:
    def test_grid_size(self, tiny_dense_matrix):
        occ = tiny_dense_matrix.tile_occupancies(2, 2)
        assert occ.shape == (4,)

    def test_counts(self, tiny_dense_matrix):
        occ = tiny_dense_matrix.tile_occupancies(2, 2)
        assert list(occ) == [1, 1, 2, 1]

    def test_sum_equals_nnz(self, banded):
        for tile in (7, 16, 33):
            assert banded.tile_occupancies(tile, tile).sum() == banded.nnz

    def test_exclude_empty(self, tiny_dense_matrix):
        occ = tiny_dense_matrix.tile_occupancies(1, 1, include_empty=False)
        assert len(occ) == 5
        assert all(occ == 1)

    def test_row_block_occupancies_sum(self, powerlaw):
        for block in (1, 7, 64, 1000):
            assert powerlaw.row_block_occupancies(block).sum() == powerlaw.nnz

    def test_row_block_matches_row_occupancies(self, tiny_dense_matrix):
        assert list(tiny_dense_matrix.row_block_occupancies(1)) == [2, 0, 2, 1]

    def test_max_tile_occupancy(self, tiny_dense_matrix):
        assert tiny_dense_matrix.max_tile_occupancy(4, 4) == 5
        assert tiny_dense_matrix.max_tile_occupancy(2, 2) == 2

    def test_invalid_tile_shape_raises(self, tiny_dense_matrix):
        with pytest.raises(ValueError):
            tiny_dense_matrix.tile_occupancies(0, 4)


class TestAlgebra:
    def test_matmul_matches_numpy(self, tiny_dense_matrix):
        other = SparseMatrix.identity(4)
        product = tiny_dense_matrix.matmul(other)
        assert product == tiny_dense_matrix

    def test_gram_matches_dense(self, tiny_dense_matrix):
        dense = tiny_dense_matrix.to_dense()
        expected = dense @ dense.T
        assert np.allclose(tiny_dense_matrix.gram().to_dense(), expected)

    def test_matmul_dimension_mismatch_raises(self, tiny_dense_matrix):
        with pytest.raises(ValueError):
            tiny_dense_matrix.matmul(SparseMatrix.identity(3))


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=30),
    cols=st.integers(min_value=1, max_value=30),
    tile_rows=st.integers(min_value=1, max_value=8),
    tile_cols=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_tile_occupancies_partition_nnz(rows, cols, tile_rows, tile_cols, seed):
    """Every nonzero lands in exactly one tile, for any matrix and tile shape."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, cols)) < 0.3).astype(float)
    matrix = SparseMatrix.from_dense(dense)
    occupancies = matrix.tile_occupancies(tile_rows, tile_cols)
    grid = matrix.shape.tile_grid((tile_rows, tile_cols))
    assert len(occupancies) == grid[0] * grid[1]
    assert occupancies.sum() == matrix.nnz


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=40),
    block=st.integers(min_value=1, max_value=50),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_row_blocks_partition_nnz(rows, block, seed):
    """Row-block occupancies always partition the matrix occupancy."""
    rng = np.random.default_rng(seed)
    dense = (rng.random((rows, 17)) < 0.25).astype(float)
    matrix = SparseMatrix.from_dense(dense)
    occupancies = matrix.row_block_occupancies(block)
    assert occupancies.sum() == matrix.nnz
    assert len(occupancies) == -(-rows // block)
