"""Tests for the shared-memory suite transport (:mod:`repro.tensor.shm`)."""

import sys
import threading

import numpy as np
import pytest

from repro.experiments.runner import clear_process_caches
from repro.tensor import shm
from repro.tensor.suite import _SHARED_MATRIX_CACHE, small_suite, suite_from_token


@pytest.fixture
def token():
    return small_suite().cache_token


def _export(token, **kwargs):
    names = list(suite_from_token(token).names)
    manifest = shm.export_suite(token, names, **kwargs)
    if manifest is None:
        pytest.skip("shared memory unavailable in this environment")
    return manifest


class TestExportAttachRoundtrip:
    def test_attached_matrices_are_canonical_views(self, token):
        suite = suite_from_token(token)
        names = list(suite.names)
        manifest = _export(token)
        try:
            assert shm.active_segments() == [manifest.segment_name]
            originals = {name: suite.matrix(name) for name in names}
            # Cold cache, as in a worker that never built a matrix.
            clear_process_caches()
            shm.attach_suite(manifest)
            scope, seed, _ = token
            for name in names:
                cached = _SHARED_MATRIX_CACHE[(scope, seed, name)]
                want = originals[name]
                assert cached.num_rows == want.num_rows
                assert cached.num_cols == want.num_cols
                assert np.array_equal(cached.csr.indptr, want.csr.indptr)
                assert np.array_equal(cached.csr.indices, want.csr.indices)
                assert np.array_equal(cached.csr.data, want.csr.data)
                # Zero-copy views are read-only and marked canonical.
                assert not cached.csr.data.flags.writeable
                assert cached.csr.has_sorted_indices
        finally:
            # Drop every view into the segment (the loop variable included)
            # before closing it, or mmap.close() raises BufferError.
            cached = want = None
            clear_process_caches()
            shm.detach_all()
            shm.release_suite(token)
        assert shm.active_segments() == []

    def test_attach_is_idempotent(self, token):
        manifest = _export(token)
        try:
            shm.attach_suite(manifest)
            shm.attach_suite(manifest)  # second attach is a no-op
        finally:
            clear_process_caches()
            shm.detach_all()
            shm.release_suite(token)

    def test_export_includes_pairs_when_requested(self, token):
        manifest = _export(token, include_pairs=True)
        try:
            keys = [key for key, _ in manifest.entries]
            assert any(len(key) == 4 and key[3] == "pair" for key in keys)
        finally:
            shm.release_suite(token)


class TestLifecycle:
    def test_reference_counted_release(self, token):
        first = _export(token)
        second = _export(token)
        # Same segment, same manifest: re-export bumps the count.
        assert second.segment_name == first.segment_name
        assert shm.active_segments() == [first.segment_name]
        shm.release_suite(token)
        assert shm.active_segments() == [first.segment_name]
        shm.release_suite(token)
        assert shm.active_segments() == []
        shm.release_suite(token)  # over-release is a no-op
        assert shm.active_segments() == []

    def test_release_all_ignores_refcounts(self, token):
        _export(token)
        _export(token)
        shm.release_all()
        assert shm.active_segments() == []


class TestGracefulDegradation:
    def test_attach_missing_segment_is_silent(self):
        manifest = shm.SuiteManifest(
            segment_name="repro-shm-test-does-not-exist",
            suite_token=("small", 2023, ("tiny-fem",)),
            entries=())
        shm.attach_suite(manifest)  # must not raise

    def test_attach_none_is_silent(self):
        shm.attach_suite(None)


class TestConcurrentExportRelease:
    def test_refcounts_survive_concurrent_export_release(self, token):
        """Regression: refcount updates were unguarded read-modify-write, so
        concurrent export/release pairs (server requests sharing one suite)
        lost increments — unlinking a segment under a live exporter — or
        lost decrements, leaking the segment past the last release."""
        _export(token)  # skip early if shm unavailable; warms suite caches
        shm.release_suite(token)
        names = list(suite_from_token(token).names)

        n_threads, iterations = 8, 25
        errors = []
        barrier = threading.Barrier(n_threads)

        def worker():
            try:
                barrier.wait()
                for _ in range(iterations):
                    manifest = shm.export_suite(token, names)
                    if manifest is not None:
                        shm.release_suite(token)
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)  # force interleaving inside the RMW
        try:
            threads = [threading.Thread(target=worker)
                       for _ in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)

        assert errors == []
        # Every export was paired with a release: nothing may stay live.
        assert shm.active_segments() == []

    def test_simultaneous_cold_exports_share_one_segment(self, token,
                                                         monkeypatch):
        """Regression (deterministic): pre-fix, two threads exporting a cold
        token could both observe "not yet exported" and each create a
        segment — the second overwrote the first in the registry, leaking
        it.  A barrier inside the suite-build step forces both threads into
        that window; post-fix the registry lock serializes them and the
        second exporter reuses the first's segment."""
        _export(token)  # skip early if shm unavailable; warms suite caches
        shm.release_suite(token)
        names = list(suite_from_token(token).names)

        real_suite_from_token = shm.suite_from_token
        barrier = threading.Barrier(2)

        def rendezvous_suite_from_token(suite_token):
            # Post-fix only one thread is inside the cold path at a time, so
            # the barrier times out and breaks — that is the pass case.
            try:
                barrier.wait(timeout=1.0)
            except threading.BrokenBarrierError:
                pass
            return real_suite_from_token(suite_token)

        monkeypatch.setattr(shm, "suite_from_token",
                            rendezvous_suite_from_token)

        manifests = [None, None]

        def worker(index):
            manifests[index] = shm.export_suite(token, names)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        if None in manifests:
            pytest.skip("shared memory unavailable in this environment")
        assert manifests[0].segment_name == manifests[1].segment_name
        assert shm.active_segments() == [manifests[0].segment_name]
        shm.release_suite(token)
        shm.release_suite(token)
        assert shm.active_segments() == []
