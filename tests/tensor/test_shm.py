"""Tests for the shared-memory suite transport (:mod:`repro.tensor.shm`)."""

import numpy as np
import pytest

from repro.experiments.runner import clear_process_caches
from repro.tensor import shm
from repro.tensor.suite import _SHARED_MATRIX_CACHE, small_suite, suite_from_token


@pytest.fixture
def token():
    return small_suite().cache_token


def _export(token, **kwargs):
    names = list(suite_from_token(token).names)
    manifest = shm.export_suite(token, names, **kwargs)
    if manifest is None:
        pytest.skip("shared memory unavailable in this environment")
    return manifest


class TestExportAttachRoundtrip:
    def test_attached_matrices_are_canonical_views(self, token):
        suite = suite_from_token(token)
        names = list(suite.names)
        manifest = _export(token)
        try:
            assert shm.active_segments() == [manifest.segment_name]
            originals = {name: suite.matrix(name) for name in names}
            # Cold cache, as in a worker that never built a matrix.
            clear_process_caches()
            shm.attach_suite(manifest)
            scope, seed, _ = token
            for name in names:
                cached = _SHARED_MATRIX_CACHE[(scope, seed, name)]
                want = originals[name]
                assert cached.num_rows == want.num_rows
                assert cached.num_cols == want.num_cols
                assert np.array_equal(cached.csr.indptr, want.csr.indptr)
                assert np.array_equal(cached.csr.indices, want.csr.indices)
                assert np.array_equal(cached.csr.data, want.csr.data)
                # Zero-copy views are read-only and marked canonical.
                assert not cached.csr.data.flags.writeable
                assert cached.csr.has_sorted_indices
        finally:
            # Drop every view into the segment (the loop variable included)
            # before closing it, or mmap.close() raises BufferError.
            cached = want = None
            clear_process_caches()
            shm.detach_all()
            shm.release_suite(token)
        assert shm.active_segments() == []

    def test_attach_is_idempotent(self, token):
        manifest = _export(token)
        try:
            shm.attach_suite(manifest)
            shm.attach_suite(manifest)  # second attach is a no-op
        finally:
            clear_process_caches()
            shm.detach_all()
            shm.release_suite(token)

    def test_export_includes_pairs_when_requested(self, token):
        manifest = _export(token, include_pairs=True)
        try:
            keys = [key for key, _ in manifest.entries]
            assert any(len(key) == 4 and key[3] == "pair" for key in keys)
        finally:
            shm.release_suite(token)


class TestLifecycle:
    def test_reference_counted_release(self, token):
        first = _export(token)
        second = _export(token)
        # Same segment, same manifest: re-export bumps the count.
        assert second.segment_name == first.segment_name
        assert shm.active_segments() == [first.segment_name]
        shm.release_suite(token)
        assert shm.active_segments() == [first.segment_name]
        shm.release_suite(token)
        assert shm.active_segments() == []
        shm.release_suite(token)  # over-release is a no-op
        assert shm.active_segments() == []

    def test_release_all_ignores_refcounts(self, token):
        _export(token)
        _export(token)
        shm.release_all()
        assert shm.active_segments() == []


class TestGracefulDegradation:
    def test_attach_missing_segment_is_silent(self):
        manifest = shm.SuiteManifest(
            segment_name="repro-shm-test-does-not-exist",
            suite_token=("small", 2023, ("tiny-fem",)),
            entries=())
        shm.attach_suite(manifest)  # must not raise

    def test_attach_none_is_silent(self):
        shm.attach_suite(None)
