"""Property-based validation harness over random sparsity-model matrices.

Hypothesis drives random ``(model, params, seed)`` triples through the synth
registry and checks the tiling invariants the whole evaluation pipeline rests
on:

* **partition** — every stored nonzero lands in exactly one tile, for both
  the uniform-grid and row-block coordinate-space tilings (the occupancy
  array sums to ``nnz`` and no tile is counted twice);
* **round-trip** — the structure-of-arrays :class:`~repro.tiling.base.Tiling`
  agrees tile-by-tile with a dense NumPy reference (counting nonzeros inside
  each tile's coordinate rectangle), i.e. the vectorized occupancy scan and
  the lazy ``Tile`` views describe the same partition;
* **reproducibility** — the same spec and seed regenerate the bit-identical
  matrix.

The suite-level reproducibility guarantees (tokens, scheduler workers) are
pinned by ``tests/tensor/test_synth.py`` and
``tests/experiments/test_synth_scheduler.py``; this module stresses the
geometry underneath them.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.tensor.synth import SynthSpec
from repro.tiling.coordinate import row_block_tiling, uniform_shape_tiling

#: Keep generated matrices small: the point is structural diversity, not size.
_PROPERTY_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def synth_spec_strategy(draw) -> SynthSpec:
    """A random small spec from any registered model."""
    model = draw(st.sampled_from(
        ["uniform", "banded", "block_diagonal", "power_law_rows",
         "density_gradient"]))
    n = draw(st.integers(min_value=24, max_value=120))
    if model == "uniform":
        params = {"n": n, "nnz": draw(st.integers(1, max(1, n * n // 4)))}
    elif model == "banded":
        params = {
            "n": n,
            "bandwidth": draw(st.integers(1, max(1, n // 6))),
            "band_fill": draw(st.floats(0.05, 1.0)),
            "off_band_nnz": draw(st.integers(0, n)),
        }
    elif model == "block_diagonal":
        params = {
            "n": n,
            "block_size": draw(st.integers(1, n)),
            "block_fill": draw(st.floats(0.05, 1.0)),
            "off_block_nnz": draw(st.integers(0, n)),
        }
    elif model == "power_law_rows":
        params = {
            "n": n,
            "nnz": draw(st.integers(1, n * 4)),
            "alpha": draw(st.floats(0.3, 2.5)),
            "max_degree_fraction": draw(st.floats(0.01, 1.0)),
        }
    else:  # density_gradient
        params = {
            "n": n,
            "nnz": draw(st.integers(1, n * 4)),
            "gamma": draw(st.floats(0.0, 4.0)),
        }
    return SynthSpec(model, tuple(params.items()))


def _dense_tile_count(dense: np.ndarray, tile) -> int:
    block = dense[tile.row_range.start:tile.row_range.stop,
                  tile.col_range.start:tile.col_range.stop]
    return int(np.count_nonzero(block))


@_PROPERTY_SETTINGS
@given(spec=synth_spec_strategy(), seed=st.integers(0, 2 ** 31),
       tile_rows=st.integers(1, 40), tile_cols=st.integers(1, 40))
def test_uniform_tiling_partitions_every_nonzero(spec, seed, tile_rows,
                                                 tile_cols):
    matrix = spec.build(np.random.default_rng(seed))
    tiling = uniform_shape_tiling(matrix, tile_rows, tile_cols)
    grid_rows = -(-matrix.num_rows // tile_rows)
    grid_cols = -(-matrix.num_cols // tile_cols)
    assert len(tiling) == grid_rows * grid_cols
    assert int(tiling.occupancies().sum()) == matrix.nnz


@_PROPERTY_SETTINGS
@given(spec=synth_spec_strategy(), seed=st.integers(0, 2 ** 31),
       tile_rows=st.integers(1, 40), tile_cols=st.integers(1, 40))
def test_uniform_tiling_matches_dense_reference(spec, seed, tile_rows,
                                                tile_cols):
    matrix = spec.build(np.random.default_rng(seed))
    dense = matrix.to_dense()
    tiling = uniform_shape_tiling(matrix, tile_rows, tile_cols)
    covered = np.zeros(dense.shape, dtype=np.int32)
    for tile in tiling:
        assert tile.occupancy == _dense_tile_count(dense, tile)
        covered[tile.row_range.start:tile.row_range.stop,
                tile.col_range.start:tile.col_range.stop] += 1
    # The tiles cover every coordinate point exactly once (no overlap, no gap).
    assert np.all(covered == 1)


@_PROPERTY_SETTINGS
@given(spec=synth_spec_strategy(), seed=st.integers(0, 2 ** 31),
       block_rows=st.integers(1, 40))
def test_row_block_tiling_matches_dense_reference(spec, seed, block_rows):
    matrix = spec.build(np.random.default_rng(seed))
    dense = matrix.to_dense()
    tiling = row_block_tiling(matrix, block_rows)
    assert int(tiling.occupancies().sum()) == matrix.nnz
    for tile in tiling:
        assert tile.num_cols == matrix.num_cols
        assert tile.occupancy == _dense_tile_count(dense, tile)


@_PROPERTY_SETTINGS
@given(spec=synth_spec_strategy(), seed=st.integers(0, 2 ** 31))
def test_soa_views_round_trip(spec, seed):
    """The SoA occupancy array and the lazy Tile views agree everywhere."""
    matrix = spec.build(np.random.default_rng(seed))
    tiling = uniform_shape_tiling(matrix, 16, 16)
    views = list(tiling)
    assert [tile.occupancy for tile in views] == tiling.occupancies().tolist()
    assert [tile.index for tile in views] == list(range(len(tiling)))
    for index in (0, len(tiling) - 1):
        tile = tiling[index]
        assert tile.index == views[index].index
        assert tile.row_range == views[index].row_range
        assert tile.col_range == views[index].col_range


@_PROPERTY_SETTINGS
@given(spec=synth_spec_strategy(), seed=st.integers(0, 2 ** 31))
def test_same_identity_regenerates_bit_identical(spec, seed):
    first = spec.build(np.random.default_rng(seed))
    second = spec.build(np.random.default_rng(seed))
    assert first == second
    assert np.array_equal(first.csr.indptr, second.csr.indptr)
    assert np.array_equal(first.csr.indices, second.csr.indices)
