"""Kernel family: exact operation counts validated against dense references."""

import numpy as np
import pytest

from repro.reference.spmspm import multiply_count
from repro.tensor.kernels import (
    KERNELS,
    SDDMMWorkload,
    SpMMWorkload,
    SpMVWorkload,
    build_kernel_workload,
    dense_operand,
    kernel_names,
    kernel_spec,
)
from repro.tensor.einsum import MatmulWorkload
from repro.tensor.sparse import SparseMatrix


@pytest.fixture
def rng():
    return np.random.default_rng(99)


@pytest.fixture
def sparse_a(rng):
    dense = np.where(rng.random((17, 13)) < 0.3, rng.uniform(0.5, 1.5, (17, 13)), 0.0)
    dense[4, :] = 0.0  # one guaranteed-empty row for output-occupancy counting
    return SparseMatrix.from_dense(dense, name="A")


@pytest.fixture
def sparse_b(rng):
    dense = np.where(rng.random((13, 11)) < 0.35, rng.uniform(0.5, 1.5, (13, 11)), 0.0)
    return SparseMatrix.from_dense(dense, name="B")


class TestSpMSpMGeneral:
    def test_distinct_operands_counts_match_gustavson(self, sparse_a, sparse_b):
        workload = MatmulWorkload(a=sparse_a, b=sparse_b, name="AxB")
        counts = workload.operation_counts()
        assert counts.effectual_multiplies == multiply_count(sparse_a, sparse_b)
        assert counts.dense_multiplies == 17 * 13 * 11

    def test_reference_dense_matches_numpy(self, sparse_a, sparse_b):
        workload = MatmulWorkload(a=sparse_a, b=sparse_b)
        expected = sparse_a.to_dense() @ sparse_b.to_dense()
        np.testing.assert_allclose(workload.reference_dense(), expected)

    def test_output_nonzeros_matches_pattern(self, sparse_a, sparse_b):
        # Positive values cannot cancel, so the symbolic pattern count equals
        # the dense nonzero count.
        workload = MatmulWorkload(a=sparse_a, b=sparse_b)
        counts = workload.operation_counts()
        dense = sparse_a.to_dense() @ sparse_b.to_dense()
        assert counts.output_nonzeros == int(np.count_nonzero(dense))

    def test_stationary_streaming_are_a_b(self, sparse_a, sparse_b):
        workload = MatmulWorkload(a=sparse_a, b=sparse_b)
        assert workload.stationary_operand is sparse_a
        assert workload.streaming_operand is sparse_b
        assert workload.kernel == "spmspm"


class TestSpMM:
    def test_counts_and_reference(self, sparse_a, rng):
        factor = dense_operand(rng, sparse_a.num_cols, 5)
        workload = SpMMWorkload(sparse_a, factor)
        counts = workload.operation_counts()
        assert counts.effectual_multiplies == sparse_a.nnz * 5
        assert counts.dense_multiplies == 17 * 13 * 5
        dense = sparse_a.to_dense() @ factor
        np.testing.assert_allclose(workload.reference_dense(), dense)
        # Symbolic output occupancy == dense nonzero count (no cancellation).
        assert counts.output_nonzeros == int(np.count_nonzero(dense))

    def test_streaming_operand_is_fully_dense(self, sparse_a, rng):
        workload = SpMMWorkload(sparse_a, dense_operand(rng, sparse_a.num_cols, 4))
        streaming = workload.streaming_operand
        assert streaming.nnz == sparse_a.num_cols * 4
        assert streaming.density == 1.0

    def test_inner_dimension_mismatch_raises(self, sparse_a, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            SpMMWorkload(sparse_a, dense_operand(rng, 7, 4))


class TestSpMV:
    def test_counts_and_reference(self, sparse_a, rng):
        vector = dense_operand(rng, sparse_a.num_cols, 1).reshape(-1)
        workload = SpMVWorkload(sparse_a, vector)
        counts = workload.operation_counts()
        assert counts.effectual_multiplies == sparse_a.nnz
        assert counts.dense_multiplies == 17 * 13
        result = sparse_a.to_dense() @ vector
        np.testing.assert_allclose(workload.reference_dense(), result)
        assert counts.output_nonzeros == int(np.count_nonzero(result))

    def test_streaming_operand_is_column_vector(self, sparse_a, rng):
        workload = SpMVWorkload(sparse_a, dense_operand(rng, sparse_a.num_cols, 1))
        assert workload.streaming_operand.csr.shape == (sparse_a.num_cols, 1)

    def test_einsum_is_not_a_matmul(self, sparse_a, rng):
        workload = SpMVWorkload(sparse_a, dense_operand(rng, sparse_a.num_cols, 1))
        assert workload.einsum.contracted_indices == ("k",)
        assert not workload.einsum.is_matmul


class TestSDDMM:
    def test_counts_and_reference(self, sparse_a, rng):
        f = 6
        d1 = dense_operand(rng, sparse_a.num_rows, f)
        d2 = dense_operand(rng, f, sparse_a.num_cols)
        workload = SDDMMWorkload(sparse_a, d1, d2)
        counts = workload.operation_counts()
        assert counts.effectual_multiplies == sparse_a.nnz * (f + 1)
        assert counts.output_nonzeros == sparse_a.nnz
        assert counts.dense_multiplies == 17 * 13 * f + 17 * 13
        expected = sparse_a.to_dense() * (d1 @ d2)
        np.testing.assert_allclose(workload.reference_dense(), expected)
        assert int(np.count_nonzero(expected)) == sparse_a.nnz

    def test_shape_validation(self, sparse_a, rng):
        with pytest.raises(ValueError, match="inner dimensions"):
            SDDMMWorkload(sparse_a, dense_operand(rng, 17, 4),
                          dense_operand(rng, 5, 13))
        with pytest.raises(ValueError, match="sampler shape"):
            SDDMMWorkload(sparse_a, dense_operand(rng, 16, 4),
                          dense_operand(rng, 4, 13))


class TestKernelRegistry:
    def test_family_members(self):
        assert set(kernel_names()) == {"gram", "spmspm", "spmm", "spmv", "sddmm"}
        assert kernel_names()[0] == "gram"

    def test_unknown_kernel_raises_with_hint(self):
        with pytest.raises(KeyError, match="spmm"):
            kernel_spec("nonesuch")

    def test_stream_salts_are_distinct(self):
        salts = [spec.stream_salt for spec in KERNELS.values()
                 if spec.needs_dense_operand]
        assert len(set(salts)) == len(salts)

    def test_build_gram_matches_gram_constructor(self, sparse_a):
        built = build_kernel_workload("gram", sparse_a)
        assert built.kernel == "gram"  # B is A's cached transpose
        assert built.b.csr.shape == (sparse_a.num_cols, sparse_a.num_rows)
        counts = built.operation_counts()
        assert counts.effectual_multiplies == \
            MatmulWorkload.gram(sparse_a).operation_counts().effectual_multiplies

    def test_build_requires_paired_operand(self, sparse_a):
        with pytest.raises(ValueError, match="paired"):
            build_kernel_workload("spmspm", sparse_a)

    def test_build_requires_rng_for_dense_kernels(self, sparse_a):
        for kernel in ("spmm", "spmv", "sddmm"):
            with pytest.raises(ValueError, match="rng"):
                build_kernel_workload(kernel, sparse_a)

    def test_build_is_deterministic_per_seed(self, sparse_a):
        one = build_kernel_workload("spmm", sparse_a,
                                    rng=np.random.default_rng(5), feature_dim=3)
        two = build_kernel_workload("spmm", sparse_a,
                                    rng=np.random.default_rng(5), feature_dim=3)
        np.testing.assert_array_equal(one.b_dense, two.b_dense)

    def test_dense_operand_has_no_zeros(self, rng):
        factor = dense_operand(rng, 30, 7)
        assert factor.shape == (30, 7)
        assert np.all(factor >= 0.5) and np.all(factor < 1.5)
