"""Tests for the CSF fiber-tree format and fiber intersection."""

import pytest

from repro.tensor.formats import CompressedSparseFiber, Fiber, intersection_steps
from repro.tensor.sparse import SparseMatrix


class TestFiber:
    def test_occupancy(self):
        fiber = Fiber([1, 4, 9], [1.0, 2.0, 3.0])
        assert fiber.occupancy == 3

    def test_lookup_present(self):
        fiber = Fiber([1, 4, 9], ["a", "b", "c"])
        assert fiber.lookup(4) == "b"

    def test_lookup_absent(self):
        fiber = Fiber([1, 4], ["a", "b"])
        assert fiber.lookup(3) is None

    def test_iteration(self):
        fiber = Fiber([2, 5], [10.0, 20.0])
        assert list(fiber) == [(2, 10.0), (5, 20.0)]

    def test_requires_sorted_coords(self):
        with pytest.raises(ValueError):
            Fiber([3, 1], [1.0, 2.0])

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            Fiber([1, 2], [1.0])

    def test_intersect(self):
        a = Fiber([1, 3, 5, 7], ["a1", "a3", "a5", "a7"])
        b = Fiber([3, 4, 7], ["b3", "b4", "b7"])
        result = a.intersect(b)
        assert [c for c, _, _ in result] == [3, 7]
        assert result[0][1:] == ("a3", "b3")

    def test_intersect_disjoint(self):
        assert Fiber([1], ["x"]).intersect(Fiber([2], ["y"])) == []


class TestIntersectionSteps:
    def test_identical_fibers(self):
        fiber = Fiber([1, 2, 3], [1.0, 1.0, 1.0])
        assert intersection_steps(fiber, fiber) == 3

    def test_disjoint_fibers(self):
        a = Fiber([1, 2, 3], [1] * 3)
        b = Fiber([10, 11], [1] * 2)
        # Steps advance the smaller coordinate until one stream is exhausted.
        assert intersection_steps(a, b) == 3

    def test_bounded_by_sum_of_lengths(self):
        a = Fiber([1, 4, 6, 9], [1] * 4)
        b = Fiber([2, 4, 7, 9, 11], [1] * 5)
        assert intersection_steps(a, b) <= len(a.coords) + len(b.coords)

    def test_empty_fiber(self):
        assert intersection_steps(Fiber([], []), Fiber([1], [1.0])) == 0


class TestCompressedSparseFiber:
    def test_data_words_equals_nnz(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        assert csf.data_words == tiny_dense_matrix.nnz

    def test_metadata_counts_rows_and_nonzeros(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        # 3 populated rows + 5 nonzeros.
        assert csf.metadata_words == 3 + 5

    def test_footprint(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        assert csf.footprint_words == csf.data_words + csf.metadata_words

    def test_populated_rows(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        assert list(csf.populated_rows) == [0, 2, 3]

    def test_row_fiber_contents(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        fiber = csf.row_fiber(2)
        assert fiber.coords == [0, 3]
        assert fiber.payloads == [3.0, 4.0]

    def test_row_fiber_empty_row(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        assert csf.row_fiber(1).occupancy == 0

    def test_row_fiber_out_of_range(self, tiny_dense_matrix):
        csf = CompressedSparseFiber(tiny_dense_matrix)
        with pytest.raises(IndexError):
            csf.row_fiber(99)

    def test_top_fiber_structure(self, tiny_dense_matrix):
        top = CompressedSparseFiber(tiny_dense_matrix).top_fiber()
        assert top.coords == [0, 2, 3]
        assert all(isinstance(p, Fiber) for p in top.payloads)

    def test_to_dict_roundtrip(self, tiny_dense_matrix):
        mapping = CompressedSparseFiber(tiny_dense_matrix).to_dict()
        rebuilt_nnz = sum(len(cols) for cols in mapping.values())
        assert rebuilt_nnz == tiny_dense_matrix.nnz
        assert mapping[0] == {0: 1.0, 2: 2.0}

    def test_consistency_on_generated_matrix(self, powerlaw):
        csf = CompressedSparseFiber(powerlaw)
        assert csf.data_words == powerlaw.nnz
        assert csf.metadata_words == len(csf.populated_rows) + powerlaw.nnz
