"""Tests for the synthetic evaluation workload suite."""

import pytest

from repro.tensor.suite import WorkloadSuite, default_suite, small_suite


class TestDefaultSuite:
    def test_has_22_workloads(self):
        assert len(default_suite()) == 22

    def test_names_match_table2(self):
        names = default_suite().names
        assert names[0] == "rma10"
        assert names[-1] == "roadNet-CA"
        assert "amazon0312" in names and "web-Google" in names

    def test_categories(self):
        suite = default_suite()
        linear = [s for s in suite if s.category == "linear-system"]
        graph = [s for s in suite if s.category == "graph"]
        assert len(linear) == 9
        assert len(graph) == 13

    def test_specs_have_paper_metadata(self):
        for spec in default_suite():
            assert spec.paper_rows > 1000
            assert 0.99 < spec.paper_sparsity < 1.0

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            default_suite().matrix("not-a-workload")

    def test_contains(self):
        suite = default_suite()
        assert "rma10" in suite
        assert "nope" not in suite


class TestSmallSuite:
    def test_has_three_workloads(self, test_suite):
        assert len(test_suite) == 3

    def test_matrices_are_sparse(self, test_suite):
        for name in test_suite.names:
            matrix = test_suite.matrix(name)
            assert matrix.sparsity > 0.9
            assert matrix.nnz > 0

    def test_matrix_is_cached(self, test_suite):
        assert test_suite.matrix("tiny-fem") is test_suite.matrix("tiny-fem")

    def test_deterministic_across_instances(self):
        a = small_suite().matrix("tiny-social")
        b = small_suite().matrix("tiny-social")
        assert a == b

    def test_matrices_builds_all(self, test_suite):
        matrices = test_suite.matrices()
        assert set(matrices) == set(test_suite.names)

    def test_spec_lookup(self, test_suite):
        spec = test_suite.spec("tiny-road")
        assert spec.category == "graph"


class TestSuiteMechanics:
    def test_duplicate_names_rejected(self, test_suite):
        specs = [test_suite.spec("tiny-fem"), test_suite.spec("tiny-fem")]
        with pytest.raises(ValueError):
            WorkloadSuite(specs)

    def test_subset_preserves_matrices(self, test_suite):
        subset = test_suite.subset(["tiny-fem"])
        assert subset.names == ["tiny-fem"]
        assert subset.matrix("tiny-fem") == test_suite.matrix("tiny-fem")

    def test_subset_unknown_name_raises(self, test_suite):
        with pytest.raises(KeyError):
            test_suite.subset(["missing"])

    def test_different_seed_changes_matrices(self):
        a = small_suite(seed=1).matrix("tiny-social")
        b = small_suite(seed=2).matrix("tiny-social")
        assert a != b


class TestPairedOperands:
    def test_paired_matrix_differs_from_primary(self, test_suite):
        primary = test_suite.matrix("tiny-social")
        pair = test_suite.paired_matrix("tiny-social")
        assert pair.csr.shape == primary.csr.shape  # same structure class
        assert pair != primary                      # different instance

    def test_paired_matrix_deterministic_across_instances(self):
        a = small_suite().paired_matrix("tiny-fem")
        b = small_suite().paired_matrix("tiny-fem")
        assert (a.csr != b.csr).nnz == 0

    def test_paired_matrix_cached(self, test_suite):
        assert test_suite.paired_matrix("tiny-road") is \
            test_suite.paired_matrix("tiny-road")

    def test_paired_matrix_unknown_name_raises(self, test_suite):
        with pytest.raises(KeyError):
            test_suite.paired_matrix("missing")

    def test_subset_carries_pairs_over(self, test_suite):
        pair = test_suite.paired_matrix("tiny-fem")
        subset = test_suite.subset(["tiny-fem"])
        assert subset.paired_matrix("tiny-fem") is pair

    def test_explicit_b_builder_wins(self, test_suite):
        from dataclasses import replace

        from repro.tensor.sparse import SparseMatrix

        other = SparseMatrix.identity(600, name="explicit-b")
        spec = replace(test_suite.spec("tiny-fem"),
                       b_builder=lambda rng: other)
        suite = WorkloadSuite([spec], seed=test_suite.seed)
        assert suite.paired_matrix("tiny-fem") is other

    def test_kernel_rng_is_pure_function_of_identity(self, test_suite):
        import numpy as np

        one = test_suite.kernel_rng("tiny-fem", 7).uniform(size=4)
        two = small_suite().kernel_rng("tiny-fem", 7).uniform(size=4)
        np.testing.assert_array_equal(one, two)
        other_salt = small_suite().kernel_rng("tiny-fem", 8).uniform(size=4)
        assert not np.array_equal(one, other_salt)

    def test_stream_index_matches_position(self, test_suite):
        assert [test_suite.stream_index(n) for n in test_suite.names] == [0, 1, 2]
        with pytest.raises(KeyError):
            test_suite.stream_index("missing")
