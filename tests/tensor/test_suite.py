"""Tests for the synthetic evaluation workload suite."""

import pytest

from repro.tensor.suite import WorkloadSuite, default_suite, small_suite


class TestDefaultSuite:
    def test_has_22_workloads(self):
        assert len(default_suite()) == 22

    def test_names_match_table2(self):
        names = default_suite().names
        assert names[0] == "rma10"
        assert names[-1] == "roadNet-CA"
        assert "amazon0312" in names and "web-Google" in names

    def test_categories(self):
        suite = default_suite()
        linear = [s for s in suite if s.category == "linear-system"]
        graph = [s for s in suite if s.category == "graph"]
        assert len(linear) == 9
        assert len(graph) == 13

    def test_specs_have_paper_metadata(self):
        for spec in default_suite():
            assert spec.paper_rows > 1000
            assert 0.99 < spec.paper_sparsity < 1.0

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            default_suite().matrix("not-a-workload")

    def test_contains(self):
        suite = default_suite()
        assert "rma10" in suite
        assert "nope" not in suite


class TestSmallSuite:
    def test_has_three_workloads(self, test_suite):
        assert len(test_suite) == 3

    def test_matrices_are_sparse(self, test_suite):
        for name in test_suite.names:
            matrix = test_suite.matrix(name)
            assert matrix.sparsity > 0.9
            assert matrix.nnz > 0

    def test_matrix_is_cached(self, test_suite):
        assert test_suite.matrix("tiny-fem") is test_suite.matrix("tiny-fem")

    def test_deterministic_across_instances(self):
        a = small_suite().matrix("tiny-social")
        b = small_suite().matrix("tiny-social")
        assert a == b

    def test_matrices_builds_all(self, test_suite):
        matrices = test_suite.matrices()
        assert set(matrices) == set(test_suite.names)

    def test_spec_lookup(self, test_suite):
        spec = test_suite.spec("tiny-road")
        assert spec.category == "graph"


class TestSuiteMechanics:
    def test_duplicate_names_rejected(self, test_suite):
        specs = [test_suite.spec("tiny-fem"), test_suite.spec("tiny-fem")]
        with pytest.raises(ValueError):
            WorkloadSuite(specs)

    def test_subset_preserves_matrices(self, test_suite):
        subset = test_suite.subset(["tiny-fem"])
        assert subset.names == ["tiny-fem"]
        assert subset.matrix("tiny-fem") == test_suite.matrix("tiny-fem")

    def test_subset_unknown_name_raises(self, test_suite):
        with pytest.raises(KeyError):
            test_suite.subset(["missing"])

    def test_different_seed_changes_matrices(self):
        a = small_suite(seed=1).matrix("tiny-social")
        b = small_suite(seed=2).matrix("tiny-social")
        assert a != b


class TestPairedOperands:
    def test_paired_matrix_differs_from_primary(self, test_suite):
        primary = test_suite.matrix("tiny-social")
        pair = test_suite.paired_matrix("tiny-social")
        assert pair.csr.shape == primary.csr.shape  # same structure class
        assert pair != primary                      # different instance

    def test_paired_matrix_deterministic_across_instances(self):
        a = small_suite().paired_matrix("tiny-fem")
        b = small_suite().paired_matrix("tiny-fem")
        assert (a.csr != b.csr).nnz == 0

    def test_paired_matrix_cached(self, test_suite):
        assert test_suite.paired_matrix("tiny-road") is \
            test_suite.paired_matrix("tiny-road")

    def test_paired_matrix_unknown_name_raises(self, test_suite):
        with pytest.raises(KeyError):
            test_suite.paired_matrix("missing")

    def test_subset_carries_pairs_over(self, test_suite):
        pair = test_suite.paired_matrix("tiny-fem")
        subset = test_suite.subset(["tiny-fem"])
        assert subset.paired_matrix("tiny-fem") is pair

    def test_explicit_b_builder_wins(self, test_suite):
        from dataclasses import replace

        from repro.tensor.sparse import SparseMatrix

        other = SparseMatrix.identity(600, name="explicit-b")
        spec = replace(test_suite.spec("tiny-fem"),
                       b_builder=lambda rng: other)
        suite = WorkloadSuite([spec], seed=test_suite.seed)
        assert suite.paired_matrix("tiny-fem") is other

    def test_kernel_rng_is_pure_function_of_identity(self, test_suite):
        import numpy as np

        one = test_suite.kernel_rng("tiny-fem", 7).uniform(size=4)
        two = small_suite().kernel_rng("tiny-fem", 7).uniform(size=4)
        np.testing.assert_array_equal(one, two)
        other_salt = small_suite().kernel_rng("tiny-fem", 8).uniform(size=4)
        assert not np.array_equal(one, other_salt)

    def test_stream_index_matches_position(self, test_suite):
        assert [test_suite.stream_index(n) for n in test_suite.names] == [0, 1, 2]
        with pytest.raises(KeyError):
            test_suite.stream_index("missing")


class TestStreamDeterminism:
    """Regression guards for the per-workload stream derivation.

    A workload's matrix stream is ``default_rng(seed * 1_000_003 + stream
    index)``, its pair stream the same at ``+ _PAIR_STREAM_OFFSET``, and its
    kernel streams ``default_rng((seed, stream index, salt))`` — all pure
    functions of ``(suite seed, stream index)``.  Subsets and re-ordered
    suites carry their parent's indices, so every stream must survive both.
    """

    def test_matrix_stream_derivation_is_pinned(self, test_suite):
        import numpy as np

        for name in test_suite.names:
            index = test_suite.stream_index(name)
            stream = np.random.default_rng(
                test_suite.seed * 1_000_003 + index)
            expected = test_suite.spec(name).build(stream)
            assert test_suite.matrix(name) == expected

    def test_pair_stream_derivation_is_pinned(self):
        import numpy as np

        from repro.tensor.suite import _PAIR_STREAM_OFFSET

        suite = small_suite()
        name = suite.names[1]
        stream = np.random.default_rng(
            suite.seed * 1_000_003 + _PAIR_STREAM_OFFSET
            + suite.stream_index(name))
        assert suite.paired_matrix(name) == suite.spec(name).build_pair(stream)

    def test_lazy_subset_rebuilds_identical_matrices(self):
        # The subset is taken BEFORE anything is built, so it cannot carry
        # cached matrices — it must re-derive the parent's streams.
        parent = small_suite()
        subset = small_suite().subset(["tiny-road", "tiny-fem"])
        for name in subset.names:
            assert subset.matrix(name) == parent.matrix(name)
            assert subset.paired_matrix(name) == parent.paired_matrix(name)

    def test_reordered_subset_preserves_streams(self):
        parent = small_suite()
        reordered = small_suite().subset(list(reversed(parent.names)))
        assert reordered.names == list(reversed(parent.names))
        for name in parent.names:
            assert reordered.stream_index(name) == parent.stream_index(name)
            assert reordered.matrix(name) == parent.matrix(name)

    def test_subset_of_subset_preserves_streams(self):
        parent = small_suite()
        nested = small_suite().subset(["tiny-social", "tiny-road"]) \
            .subset(["tiny-road"])
        assert nested.stream_index("tiny-road") == \
            parent.stream_index("tiny-road")
        assert nested.matrix("tiny-road") == parent.matrix("tiny-road")

    def test_subset_preserves_kernel_rng_streams(self):
        import numpy as np

        parent = small_suite()
        subset = small_suite().subset(["tiny-road"])
        for salt in (101, 211, 307):
            np.testing.assert_array_equal(
                subset.kernel_rng("tiny-road", salt).uniform(size=8),
                parent.kernel_rng("tiny-road", salt).uniform(size=8))

    def test_subset_descriptors_match_full_suite(self):
        # End to end: dense kernel factors (which consume kernel_rng) built
        # from a subset are bit-identical to the full suite's.
        import numpy as np

        from repro.model.workload import WorkloadDescriptor

        full = WorkloadDescriptor.from_suite(
            small_suite(), "tiny-social", kernel="spmm")
        sub = WorkloadDescriptor.from_suite(
            small_suite().subset(["tiny-social"]), "tiny-social", kernel="spmm")
        np.testing.assert_array_equal(full.workload.b_dense,
                                      sub.workload.b_dense)

    def test_synth_subset_preserves_streams(self):
        from repro.tensor.suite import synth_suite

        specs = ["uniform:n=120,nnz=700", "banded:n=130"]
        parent = synth_suite(specs)
        subset = synth_suite(specs).subset([parent.names[1]])
        assert subset.matrix(parent.names[1]) == parent.matrix(parent.names[1])

    def test_explicit_stream_indices_override_positions(self):
        suite = small_suite()
        shifted = WorkloadSuite(
            [suite.spec(n) for n in suite.names], seed=suite.seed,
            stream_indices={"tiny-fem": 2, "tiny-road": 0})
        # tiny-fem now draws tiny-road's original stream and vice versa;
        # tiny-social (index 1) is untouched.
        assert shifted.matrix("tiny-social") == suite.matrix("tiny-social")
        assert shifted.matrix("tiny-fem") != suite.matrix("tiny-fem")

    def test_stream_indices_for_unknown_workload_rejected(self, test_suite):
        with pytest.raises(KeyError, match="unknown workloads"):
            WorkloadSuite([test_suite.spec("tiny-fem")],
                          stream_indices={"missing": 3})
