"""Tests for the sparsity-model registry (:mod:`repro.tensor.synth`)."""

import pickle

import numpy as np
import pytest

from repro.tensor import synth
from repro.tensor.suite import suite_from_token, synth_suite
from repro.tensor.synth import (
    SynthSpec,
    get_model,
    model_names,
    parse_synth_spec,
    spec_from_token,
    specs_by_workload_name,
    tile_occupancy_cv,
)


class TestRegistry:
    def test_expected_models_registered(self):
        assert set(model_names()) == {
            "uniform", "banded", "block_diagonal", "power_law_rows",
            "density_gradient"}

    def test_unknown_model_raises_with_hint(self):
        with pytest.raises(KeyError, match="uniform"):
            get_model("rmat")

    def test_defaults_are_canonical(self):
        for name in model_names():
            defaults = get_model(name).defaults
            assert list(defaults) == sorted(defaults)

    def test_every_model_builds_a_matrix(self):
        for name in model_names():
            spec = SynthSpec(name)
            matrix = spec.build(np.random.default_rng(0))
            assert matrix.nnz > 0
            assert matrix.num_rows > 0


class TestSynthSpec:
    def test_params_resolved_and_sorted(self):
        spec = SynthSpec("uniform", (("nnz", 500), ("n", 100)))
        assert spec.params == (("n", 100), ("nnz", 500))

    def test_defaults_fill_missing_params(self):
        spec = SynthSpec("power_law_rows", (("alpha", 2.2),))
        assert dict(spec.params)["n"] == 900

    def test_explicit_default_equals_implicit(self):
        assert SynthSpec("uniform", (("n", 900),)) == SynthSpec("uniform")

    def test_values_coerced_to_default_types(self):
        spec = SynthSpec("uniform", (("n", 100.0), ("nnz", "500")))
        assert dict(spec.params)["n"] == 100
        assert isinstance(dict(spec.params)["n"], int)
        assert dict(spec.params)["nnz"] == 500

    def test_unknown_param_raises_with_hint(self):
        with pytest.raises(KeyError, match="nnz"):
            SynthSpec("uniform", (("density", 0.1),))

    def test_non_numeric_param_raises(self):
        with pytest.raises(ValueError, match="expects int"):
            SynthSpec("uniform", (("n", "lots"),))

    def test_workload_name_omits_defaults(self):
        assert SynthSpec("banded").workload_name == "banded"
        named = SynthSpec("banded", (("bandwidth", 24),))
        assert named.workload_name == "banded[bandwidth=24]"

    def test_token_round_trips(self):
        spec = SynthSpec("density_gradient", (("gamma", 3.0), ("n", 400)))
        assert spec_from_token(spec.token) == spec

    def test_token_is_picklable_and_hashable(self):
        spec = SynthSpec("block_diagonal", (("block_size", 32),))
        assert pickle.loads(pickle.dumps(spec.token)) == spec.token
        assert hash(spec.token) == hash(spec.token)

    def test_build_reproducible_from_identity(self):
        spec = SynthSpec("power_law_rows", (("n", 300), ("nnz", 2500)))
        a = spec.build(np.random.default_rng(11))
        b = spec_from_token(spec.token).build(np.random.default_rng(11))
        assert a == b

    def test_workload_spec_metadata(self):
        spec = SynthSpec("uniform", (("n", 100), ("nnz", 500)))
        workload = spec.workload_spec()
        assert workload.category == "synthetic"
        assert workload.paper_rows == 100
        assert workload.paper_sparsity == pytest.approx(1.0 - 500 / 100 ** 2)


class TestParse:
    def test_model_only(self):
        assert parse_synth_spec("uniform") == SynthSpec("uniform")

    def test_model_with_params(self):
        spec = parse_synth_spec("power_law_rows:n=300, nnz=2500,alpha=1.8")
        assert dict(spec.params)["n"] == 300
        assert dict(spec.params)["alpha"] == 1.8

    def test_round_trips_through_label(self):
        spec = parse_synth_spec("banded:bandwidth=24,band_fill=0.9")
        again = parse_synth_spec(f"banded:{spec.params_label}")
        assert again == spec

    @pytest.mark.parametrize("text", ["", ":n=3", "uniform:n", "uniform:=3",
                                      "uniform:n=abc", "uniform:n==3"])
    def test_malformed_specs_raise(self, text):
        with pytest.raises((ValueError, KeyError)):
            parse_synth_spec(text)

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="known"):
            parse_synth_spec("rmat:n=100")


class TestSynthSuite:
    def test_strings_and_specs_mix(self):
        suite = synth_suite(["uniform:n=120,nnz=600",
                             SynthSpec("banded", (("n", 150),))])
        assert suite.names == ["uniform[n=120,nnz=600]", "banded[n=150]"]

    def test_empty_specs_raise(self):
        with pytest.raises(ValueError, match="at least one"):
            synth_suite([])

    def test_duplicate_specs_raise(self):
        with pytest.raises(ValueError, match="distinct"):
            synth_suite(["uniform", "uniform:n=900"])

    def test_same_identity_same_matrix(self):
        a = synth_suite(["power_law_rows:n=250,nnz=2000"], seed=7)
        b = synth_suite(["power_law_rows:n=250,nnz=2000"], seed=7)
        name = a.names[0]
        assert a.matrix(name) == b.matrix(name)
        assert np.array_equal(a.matrix(name).csr.indptr, b.matrix(name).csr.indptr)

    def test_different_seed_different_matrix(self):
        a = synth_suite(["uniform:n=200,nnz=1500"], seed=1)
        b = synth_suite(["uniform:n=200,nnz=1500"], seed=2)
        assert a.matrix(a.names[0]) != b.matrix(b.names[0])

    def test_token_rebuild_is_bit_identical(self):
        suite = synth_suite(["uniform:n=150,nnz=900",
                             "density_gradient:n=180,nnz=1200"], seed=5)
        rebuilt = suite_from_token(suite.cache_token)
        assert rebuilt.names == suite.names
        for name in suite.names:
            left, right = suite.matrix(name), rebuilt.matrix(name)
            assert left == right
            assert np.array_equal(left.csr.indices, right.csr.indices)

    def test_token_survives_pickling(self):
        suite = synth_suite(["banded:n=160"], seed=9)
        token = pickle.loads(pickle.dumps(suite.cache_token))
        rebuilt = suite_from_token(token)
        assert rebuilt.matrix(suite.names[0]) == suite.matrix(suite.names[0])

    def test_subset_token_rebuilds_subset(self):
        suite = synth_suite(["uniform:n=140,nnz=800", "banded:n=140"])
        subset = suite.subset([suite.names[1]])
        rebuilt = suite_from_token(subset.cache_token)
        assert rebuilt.names == [suite.names[1]]
        assert rebuilt.matrix(suite.names[1]) == suite.matrix(suite.names[1])

    def test_paired_operand_is_distinct_same_model(self):
        suite = synth_suite(["uniform:n=150,nnz=900"])
        name = suite.names[0]
        assert suite.paired_matrix(name) != suite.matrix(name)
        assert suite.paired_matrix(name).num_rows == 150


class TestSpecsByWorkloadName:
    def test_maps_names_to_specs(self):
        suite = synth_suite(["uniform:n=130,nnz=700", "banded"])
        mapping = specs_by_workload_name(suite)
        assert set(mapping) == set(suite.names)
        assert mapping["banded"] == SynthSpec("banded")

    def test_empty_for_canonical_and_custom_suites(self):
        from repro.tensor.suite import small_suite

        assert specs_by_workload_name(small_suite()) == {}
        assert specs_by_workload_name(object()) == {}


class TestTileOccupancyCv:
    def test_gradient_is_more_skewed_than_uniform(self):
        uniform = SynthSpec("uniform", (("n", 300), ("nnz", 3000)))
        gradient = SynthSpec("density_gradient",
                             (("n", 300), ("nnz", 3000), ("gamma", 3.0)))
        cv_uniform = tile_occupancy_cv(uniform.build(np.random.default_rng(0)))
        cv_gradient = tile_occupancy_cv(gradient.build(np.random.default_rng(0)))
        assert cv_gradient > 2 * cv_uniform

    def test_empty_matrix_is_zero(self):
        from repro.tensor.sparse import SparseMatrix

        empty = SparseMatrix(np.zeros((8, 8)), name="empty")
        assert tile_occupancy_cv(empty) == 0.0


def test_module_reexports():
    assert synth.MODELS.keys() == set(model_names())


class TestReviewRegressions:
    def test_distinct_high_precision_floats_keep_distinct_names(self):
        a = SynthSpec("power_law_rows", (("alpha", 1.2345678),))
        b = SynthSpec("power_law_rows", (("alpha", 1.2345679),))
        assert a.workload_name != b.workload_name
        suite = synth_suite([a, b])  # must not collide
        assert len(suite) == 2

    def test_params_label_round_trip_is_lossless(self):
        spec = SynthSpec("density_gradient", (("gamma", 1.2345678901),))
        assert parse_synth_spec(
            f"density_gradient:{spec.params_label}") == spec

    def test_duplicate_parameter_keys_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            parse_synth_spec("uniform:n=100,n=900")
