"""Tests for einsum parsing and SpMSpM operation counting."""

import pytest

from repro.tensor.einsum import (
    EinsumSpec,
    MATMUL_EINSUM,
    MatmulWorkload,
    count_spmspm_operations,
)
from repro.tensor.sparse import SparseMatrix


class TestEinsumSpec:
    def test_parse_matmul(self):
        spec = EinsumSpec.parse("Z[m,n] = A[m,k] * B[k,n]")
        assert spec.output == "Z"
        assert spec.a_indices == ("m", "k")
        assert spec.b_indices == ("k", "n")

    def test_contracted_indices(self):
        assert MATMUL_EINSUM.contracted_indices == ("k",)

    def test_is_matmul(self):
        assert MATMUL_EINSUM.is_matmul

    def test_non_matmul_contraction(self):
        spec = EinsumSpec.parse("Z[m] = A[m,k] * B[k,m]")
        assert not spec.is_matmul

    def test_parse_whitespace_tolerant(self):
        spec = EinsumSpec.parse("  Z[ m , n ]  =  A[ m , k ] * B[ k , n ] ")
        assert spec.output_indices == ("m", "n")

    def test_parse_malformed_raises(self):
        with pytest.raises(ValueError):
            EinsumSpec.parse("Z = A * B")

    def test_validate_shapes_ok(self):
        extents = MATMUL_EINSUM.validate_shapes({"A": (3, 4), "B": (4, 5)})
        assert extents == {"m": 3, "k": 4, "n": 5}

    def test_validate_shapes_conflict(self):
        with pytest.raises(ValueError):
            MATMUL_EINSUM.validate_shapes({"A": (3, 4), "B": (5, 6)})

    def test_validate_shapes_rank_mismatch(self):
        with pytest.raises(ValueError):
            MATMUL_EINSUM.validate_shapes({"A": (3, 4, 5)})


class TestEinsumSpecErrorPaths:
    """Error paths and non-matmul specs exercised by the kernel family."""

    @pytest.mark.parametrize("expression", [
        "Z[m,] = A[m,k] * B[k,n]",      # trailing comma: empty index
        "Z[m,n] = A[,k] * B[k,n]",      # leading comma: empty index
        "Z[m,n] = A[m, ,k] * B[k,n]",   # blank middle index
    ])
    def test_malformed_index_lists_raise(self, expression):
        with pytest.raises(ValueError, match="malformed index list"):
            EinsumSpec.parse(expression)

    @pytest.mark.parametrize("expression", [
        "Z[m,n] = A[m,k]",              # single operand
        "Z[m,n] = A[m,k] + B[k,n]",     # wrong operator
        "Z[m,n] = A[m,k] * B[k,n] * C[n,p]",  # three operands
        "",
    ])
    def test_unparseable_expressions_raise(self, expression):
        with pytest.raises(ValueError, match="expected an expression"):
            EinsumSpec.parse(expression)

    def test_validate_shapes_names_the_conflicting_index(self):
        with pytest.raises(ValueError, match="index 'k'"):
            MATMUL_EINSUM.validate_shapes({"A": (3, 4), "B": (5, 6)})

    def test_validate_shapes_rank_mismatch_names_the_tensor(self):
        with pytest.raises(ValueError, match="tensor B has 3 dimensions"):
            MATMUL_EINSUM.validate_shapes({"B": (4, 5, 6)})

    def test_validate_shapes_skips_unknown_tensors(self):
        extents = MATMUL_EINSUM.validate_shapes({"A": (3, 4), "Q": (9, 9)})
        assert extents == {"m": 3, "k": 4}

    def test_validate_output_conflict_detected(self):
        with pytest.raises(ValueError, match="conflicting extents"):
            MATMUL_EINSUM.validate_shapes(
                {"A": (3, 4), "B": (4, 5), "Z": (3, 7)})

    def test_contracted_indices_spmv(self):
        spec = EinsumSpec.parse("z[m] = A[m,k] * x[k]")
        assert spec.contracted_indices == ("k",)
        assert not spec.is_matmul
        extents = spec.validate_shapes({"A": (6, 9), "x": (9,)})
        assert extents == {"m": 6, "k": 9}

    def test_contracted_indices_sddmm_elementwise(self):
        # The SDDMM sampling einsum contracts nothing: every index of both
        # operands survives into the output.
        spec = EinsumSpec.parse("Z[m,n] = S[m,n] * P[m,n]")
        assert spec.contracted_indices == ()
        assert not spec.is_matmul

    def test_contracted_indices_batched_contraction(self):
        spec = EinsumSpec.parse("Z[b,m,n] = A[b,m,k] * B[b,k,n]")
        assert spec.contracted_indices == ("k",)
        assert not spec.is_matmul  # rank-3 operands are not a plain matmul


class TestOperationCounts:
    def test_identity_times_identity(self):
        eye = SparseMatrix.identity(5)
        counts = count_spmspm_operations(eye, eye)
        assert counts.effectual_multiplies == 5
        assert counts.output_nonzeros == 5
        assert counts.dense_multiplies == 125

    def test_tiny_matrix_gram(self, tiny_dense_matrix):
        counts = count_spmspm_operations(tiny_dense_matrix, tiny_dense_matrix.transpose())
        # sum over k of nnz(col k of A) * nnz(row k of A^T) = sum col_occ^2.
        col_occ = tiny_dense_matrix.col_occupancies()
        assert counts.effectual_multiplies == int((col_occ ** 2).sum())
        assert counts.output_nonzeros == tiny_dense_matrix.gram().nnz

    def test_compute_saving(self, powerlaw):
        counts = count_spmspm_operations(powerlaw, powerlaw.transpose())
        assert counts.compute_saving > 1.0

    def test_dimension_mismatch_raises(self, tiny_dense_matrix):
        with pytest.raises(ValueError):
            count_spmspm_operations(tiny_dense_matrix, SparseMatrix.identity(3))


class TestMatmulWorkload:
    def test_gram_shapes(self, tiny_dense_matrix):
        workload = MatmulWorkload.gram(tiny_dense_matrix)
        assert workload.m == 4 and workload.k == 4 and workload.n == 4

    def test_gram_b_is_transpose(self, tiny_dense_matrix):
        workload = MatmulWorkload.gram(tiny_dense_matrix)
        assert workload.b == tiny_dense_matrix.transpose()

    def test_reference_result_matches_scipy(self, tiny_dense_matrix):
        workload = MatmulWorkload.gram(tiny_dense_matrix)
        assert workload.reference_result() == tiny_dense_matrix.gram()

    def test_incompatible_operands_raise(self, tiny_dense_matrix):
        with pytest.raises(ValueError):
            MatmulWorkload(a=tiny_dense_matrix, b=SparseMatrix.identity(3))

    def test_einsum_property(self, tiny_dense_matrix):
        assert MatmulWorkload.gram(tiny_dense_matrix).einsum.is_matmul

    def test_operation_counts_consistent(self, banded):
        workload = MatmulWorkload.gram(banded)
        counts = workload.operation_counts()
        assert counts.output_nonzeros == workload.reference_result().nnz
