"""Tests for coordinate-space primitives."""

import pytest

from repro.tensor.coords import Range, Shape


class TestRange:
    def test_length(self):
        assert len(Range(2, 7)) == 5

    def test_empty_range(self):
        assert len(Range(3, 3)) == 0

    def test_contains(self):
        r = Range(2, 5)
        assert 2 in r and 4 in r
        assert 5 not in r and 1 not in r

    def test_iteration(self):
        assert list(Range(1, 4)) == [1, 2, 3]

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            Range(5, 2)

    def test_negative_start_raises(self):
        with pytest.raises(ValueError):
            Range(-1, 2)

    def test_intersect_overlap(self):
        assert Range(0, 10).intersect(Range(5, 20)) == Range(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert len(Range(0, 3).intersect(Range(7, 9))) == 0

    def test_clamp(self):
        assert Range(4, 12).clamp(8) == Range(4, 8)
        assert Range(10, 12).clamp(8) == Range(8, 8)


class TestShape:
    def test_size_is_product(self):
        assert Shape([4, 5]).size == 20

    def test_rank(self):
        assert Shape([2, 3, 4]).rank == 3

    def test_indexing_and_iteration(self):
        shape = Shape([6, 7])
        assert shape[0] == 6 and shape[1] == 7
        assert list(shape) == [6, 7]

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            Shape([4, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Shape([])

    def test_contains_point(self):
        shape = Shape([3, 3])
        assert shape.contains((0, 0)) and shape.contains((2, 2))
        assert not shape.contains((3, 0))

    def test_contains_wrong_rank_raises(self):
        with pytest.raises(ValueError):
            Shape([3, 3]).contains((1,))

    def test_tile_grid_exact_division(self):
        assert Shape([8, 8]).tile_grid([4, 2]) == (2, 4)

    def test_tile_grid_rounds_up(self):
        assert Shape([9, 5]).tile_grid([4, 4]) == (3, 2)

    def test_num_tiles(self):
        assert Shape([9, 5]).num_tiles([4, 4]) == 6

    def test_tile_grid_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            Shape([4, 4]).tile_grid([2])
